"""Command-line interface: run serving experiments from a shell.

    python -m repro run --model resnet-50 --preprocess-device gpu
    python -m repro serve --port 8080            # live asyncio node (HTTP)
    python -m repro serve --replay day.jsonl.gz  # sim-vs-live comparison
    python -m repro top --url http://127.0.0.1:8080   # live dashboard
    python -m repro breakdown --model vit-base-16 --size large
    python -m repro sweep --model resnet-50 --concurrencies 1,64,512,4096
    python -m repro cache --skews 0.0,1.0 --cache-mb 0,64,256 --tiers image,tensor
    python -m repro faces --brokers fused,redis,kafka --faces 1,9,25
    python -m repro faults --downtimes 0.01,0.05 --rate 150
    python -m repro bench --out BENCH_parallel.json
    python -m repro models
    python -m repro plan --rate 8000 --slo-ms 150

Sweep commands accept ``--workers N`` to fan points across CPU cores
(bit-identical to serial execution).

Every command accepts ``--json FILE`` / ``--csv FILE`` to export the
rows it prints.
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings
from typing import Dict, List, Optional

from .analysis.charts import bar_chart, stacked_bar_chart
from .analysis.export import result_to_dict, write_csv, write_json
from .analysis.tables import format_table
from .analysis.breakdown import breakdown_from_metrics
from .analysis.tracing import TraceCollector
from .apps import FacePipelineConfig, serve_classification, zero_load_breakdown
from .core.config import ServerConfig
from .models.zoo import MODEL_ZOO
from .serving import plan_capacity, run_face_pipeline
from .serving.runner import ExperimentConfig, run_experiment
from .vision.datasets import reference_dataset
from .workload import DAY_SECONDS

__all__ = ["main", "build_parser"]


def _export(args, rows: List[Dict]) -> None:
    if getattr(args, "json", None):
        write_json(args.json, rows)
        print(f"wrote {args.json}")
    if getattr(args, "csv", None):
        write_csv(args.csv, rows)
        print(f"wrote {args.csv}")


def _add_export_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", help="export rows to a JSON file")
    parser.add_argument("--csv", help="export rows to a CSV file")


def _add_workers_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep (1 = serial, 0 = one per "
             "CPU core); parallel results are bit-identical to serial")


def _add_workload_flag(parser: argparse.ArgumentParser, help_text: str) -> None:
    parser.add_argument(
        "--workload", default=None, metavar="SPEC",
        help=f"{help_text}; a trace path (*.jsonl[.gz]) or a spec like "
             "'diurnal:mean=120,swing=0.6' / 'flash:mean=100,at=300,peak=6' "
             "(see `repro workload --help`)")


def _workload_from_args(args):
    """Parse ``--workload`` if given; ``ValueError`` propagates to callers."""
    spec = getattr(args, "workload", None)
    if not spec:
        return None
    from .workload import Workload

    return Workload.parse(spec)


def _run_points(task, points, workers: int) -> List[Dict]:
    """Run sweep points serially or across cores; return ordered rows."""
    from .parallel import ParallelConfig, run_sweep

    config = ParallelConfig(
        workers=None if workers == 0 else workers,
        serial=workers == 1,
    )
    completed = 0

    def progress(result, total):
        nonlocal completed
        completed += 1
        print(f"  [{completed}/{total}] point {result.index} finished in "
              f"{result.seconds:.2f}s (pid {result.pid})", file=sys.stderr)

    parallel = not config.serial and config.resolved_workers(len(points)) > 1
    report = run_sweep(task, points, config,
                       on_progress=progress if parallel else None)
    if report.mode == "parallel":
        print(report.summary(), file=sys.stderr)
    return report.values


class _DeprecatedAlias(argparse.Action):
    """Accepts a deprecated flag spelling with a warning."""

    def __call__(self, parser, namespace, values, option_string=None):
        canonical = "--" + self.dest.replace("_", "-")
        message = f"{option_string} is deprecated; use {canonical}"
        warnings.warn(message, DeprecationWarning, stacklevel=2)
        # Default warning filters hide DeprecationWarning outside
        # __main__; a CLI user still needs to see the notice.
        print(f"warning: {message}", file=sys.stderr)
        setattr(namespace, self.dest, values)


def _add_preprocess_device_flag(parser: argparse.ArgumentParser, default: str,
                                choices: Optional[List[str]] = None,
                                help_text: str = "preprocessing device") -> None:
    """The canonical ``--preprocess-device`` flag plus its deprecated
    ``--preprocess`` alias (kept for one release)."""
    kwargs = {"default": default, "help": help_text}
    if choices is not None:
        kwargs["choices"] = choices
    parser.add_argument("--preprocess-device", dest="preprocess_device", **kwargs)
    alias_kwargs = {"dest": "preprocess_device", "action": _DeprecatedAlias,
                    "default": argparse.SUPPRESS, "help": argparse.SUPPRESS}
    if choices is not None:
        alias_kwargs["choices"] = choices
    parser.add_argument("--preprocess", **alias_kwargs)


def _int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _float_list(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part]


def _str_list(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


# -- commands -------------------------------------------------------------------


def cmd_run(args) -> int:
    trace = TraceCollector(limit=500) if args.trace else None
    result = serve_classification(
        model=args.model,
        preprocess_device=args.preprocess_device,
        image_size=args.size,
        concurrency=args.concurrency,
        gpu_count=args.gpus,
        runtime=args.runtime,
        seed=args.seed,
        on_complete=trace,
    )
    row = {"model": args.model, "preprocess_device": args.preprocess_device,
           "image": args.size, **result.to_dict()}
    print(
        format_table(
            ["metric", "value"],
            [
                ["throughput", f"{result.throughput:,.0f} img/s"],
                ["mean latency", f"{result.mean_latency * 1e3:.2f} ms"],
                ["p99 latency", f"{result.p99_latency * 1e3:.2f} ms"],
                ["mean batch", f"{result.metrics.mean_batch_size:.1f}"],
                ["energy", f"{result.joules_per_image:.3f} J/img"],
                ["GPU utilization", f"{result.gpu_utilization * 100:.0f}%"],
            ],
            title=f"{args.model} | {args.preprocess_device} preprocessing | {args.size} image",
        )
    )
    if args.trace and trace is not None:
        count = trace.write(args.trace)
        print(f"wrote {count} trace events to {args.trace} "
              "(open in chrome://tracing or Perfetto)")
    _export(args, [row])
    return 0


def cmd_serve(args) -> int:
    if args.replay:
        return _cmd_serve_replay(args)
    return _cmd_serve_live(args)


def _cmd_serve_live(args) -> int:
    import asyncio
    import signal

    from .live import LiveHttpServer, LiveNode, LiveNodeConfig

    from .telemetry import TelemetryConfig
    from .telemetry.slo import SloConfig

    slo = None
    if args.slo_ms:
        slo = SloConfig(latency_objective_seconds=args.slo_ms / 1e3,
                        target=args.target)
    telemetry = TelemetryConfig(
        enabled=True,
        trace=False,
        slo=slo,
        scrape_interval_seconds=args.scrape_interval or None,
        history_points=args.history_points,
    )
    config = LiveNodeConfig(
        server=ServerConfig(
            model=args.model,
            preprocess_device=args.preprocess_device,
            runtime=args.runtime,
        ),
        gpu_count=args.gpus,
        seed=args.seed,
        time_scale=args.time_scale,
        grace_seconds=args.grace_seconds,
        telemetry=telemetry,
    )

    async def serve() -> None:
        node = LiveNode(config)
        http = LiveHttpServer(node, args.host, args.port)
        node.start()
        await http.start()
        host, port = http.address
        print(
            f"serving {args.model} ({args.preprocess_device} preprocessing, "
            f"{args.gpus} GPU) on http://{host}:{port} — "
            "POST /v1/infer, GET /metrics /metrics/history /stats /healthz",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        try:
            if args.duration is not None:
                try:
                    await asyncio.wait_for(stop.wait(), timeout=args.duration)
                except asyncio.TimeoutError:
                    pass
            else:
                await stop.wait()
        finally:
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.remove_signal_handler(sig)
        print("shutting down: draining batchers", flush=True)
        await http.stop()
        metrics = await node.shutdown()
        print(
            f"served {metrics.completed} requests "
            f"(admitted {node.admitted}, rejected {node.rejected})"
        )
        if metrics.completed:
            print(
                f"mean latency {metrics.latency.mean * 1e3:.2f} ms | "
                f"p99 {metrics.latency.p99 * 1e3:.2f} ms | "
                f"mean batch {metrics.mean_batch_size:.2f}"
            )

    asyncio.run(serve())
    return 0


def _cmd_serve_replay(args) -> int:
    from .live import replay_trace

    try:
        report = replay_trace(
            args.replay,
            model=args.model,
            preprocess_device=args.preprocess_device,
            size=args.size,
            gpu_count=args.gpus,
            seed=args.seed,
            warmup_requests=args.warmup,
            measure_requests=args.requests,
            max_sim_seconds=args.max_seconds,
            time_scale=args.time_scale,
            fast_forward=args.fast_forward,
        )
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    mode = "fast-forward" if report.fast_forward else f"x{report.time_scale:g}"
    print(
        format_table(
            ["metric", "sim (virtual clock)", "live (asyncio)", "delta"],
            report.rows(),
            title=f"sim vs live — {report.workload_name} on {args.model} ({mode})",
        )
    )
    _export(args, [report.to_dict()])
    return 0


def cmd_top(args) -> int:
    import json as json_module
    import time
    import urllib.error
    import urllib.request

    from .analysis.top import render_top
    from .telemetry.timeseries import TimeSeriesStore

    patterns = args.series or None

    if args.cluster:
        # Offline mode: one frame from an exported cluster time-series
        # file (`repro cluster --timeseries-out FILE`).
        try:
            store = TimeSeriesStore.read_jsonl(args.cluster)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot load {args.cluster}: {error}", file=sys.stderr)
            return 2
        print(render_top(store, title=f"repro top — {args.cluster}",
                         width=args.width, patterns=patterns), end="")
        return 0

    base = args.url.rstrip("/")

    def fetch(path: str):
        with urllib.request.urlopen(base + path, timeout=10) as response:
            return json_module.loads(response.read().decode())

    frames = 1 if args.once else args.count
    shown = 0
    while frames is None or shown < frames:
        if shown:
            time.sleep(args.interval)
        try:
            history = fetch("/metrics/history")
            stats = fetch("/stats")
        except urllib.error.HTTPError as error:
            detail = error.read().decode(errors="replace")
            print(f"error: {base} returned {error.code}: {detail}",
                  file=sys.stderr)
            return 2
        except (urllib.error.URLError, OSError) as error:
            print(f"error: cannot reach {base}: {error}", file=sys.stderr)
            return 2
        store = TimeSeriesStore.from_dict(history)
        frame = render_top(store, stats=stats, title=f"repro top — {base}",
                           width=args.width, patterns=patterns)
        if not args.plain:
            print("\x1b[2J\x1b[H", end="")
        print(frame, end="", flush=True)
        shown += 1
    return 0


def cmd_breakdown(args) -> int:
    rows = []
    chart_rows = {}
    for device in _str_list(args.preprocess_device):
        result = zero_load_breakdown(
            model=args.model, preprocess_device=device, image_size=args.size
        )
        b = breakdown_from_metrics(result.metrics)
        rows.append(
            {
                "model": args.model,
                "image": args.size,
                "preprocess_device": device,
                "latency_ms": b.total * 1e3,
                "preprocess_ms": b.preprocess * 1e3,
                "inference_ms": b.inference * 1e3,
                "preprocess_share": b.preprocess_fraction,
            }
        )
        chart_rows[device] = {
            "preprocess": b.preprocess * 1e3,
            "transfer": b.transfer * 1e3,
            "inference": b.inference * 1e3,
            "other": (b.queue + b.other) * 1e3,
        }
    print(
        stacked_bar_chart(
            chart_rows,
            title=f"Zero-load latency breakdown (ms) — {args.model}, {args.size} image",
        )
    )
    for row in rows:
        print(
            f"{row['preprocess_device']}: {row['latency_ms']:.2f} ms total, "
            f"{row['preprocess_share'] * 100:.1f}% preprocessing"
        )
    _export(args, rows)
    return 0


def cmd_sweep(args) -> int:
    from .parallel import ExperimentPoint, run_experiment_point

    try:
        workload = _workload_from_args(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if workload is not None:
        # Open-loop: the workload, not closed-loop concurrency, sets the
        # load, so the sweep collapses to one point per seed.
        seeds = [args.seed + i for i in range(args.repeats)]
        points = [
            ExperimentPoint(
                config=ExperimentConfig(
                    server=ServerConfig(
                        model=args.model,
                        preprocess_device=args.preprocess_device,
                        preprocess_batch_size=64,
                    ),
                    dataset=reference_dataset(args.size),
                    warmup_requests=300,
                    measure_requests=1500,
                    seed=seed,
                ),
                workload=workload,
                tags=(("workload", workload.name), ("seed", seed)),
            )
            for seed in seeds
        ]
        rows = _run_points(run_experiment_point, points, args.workers)
        chart = {f"seed={row['seed']}": row["throughput"] for row in rows}
        print(bar_chart(chart, unit=" img/s",
                        title=f"Open-loop throughput — {workload.name}, "
                              f"{args.model} ({args.preprocess_device})"))
        _export(args, rows)
        return 0
    points = [
        ExperimentPoint(
            config=ExperimentConfig(
                server=ServerConfig(
                    model=args.model,
                    preprocess_device=args.preprocess_device,
                    preprocess_batch_size=64,
                ),
                dataset=reference_dataset(args.size),
                concurrency=concurrency,
                warmup_requests=max(300, concurrency),
                measure_requests=max(1500, 2 * concurrency),
                seed=args.seed,
            ),
            tags=(("concurrency", concurrency),),
        )
        for concurrency in _int_list(args.concurrencies)
    ]
    rows = _run_points(run_experiment_point, points, args.workers)
    chart = {f"c={row['concurrency']}": row["throughput"] for row in rows}
    print(bar_chart(chart, unit=" img/s",
                    title=f"Throughput vs concurrency — {args.model} ({args.preprocess_device})"))
    _export(args, rows)
    return 0


def cmd_cache(args) -> int:
    from .cache.config import MIB, POLICIES, CacheConfig
    from .vision.datasets import ImageNetLikeDataset, ZipfDataset

    tiers = _str_list(args.tiers)
    unknown = [tier for tier in tiers if tier not in ("image", "tensor", "result")]
    if unknown:
        print(f"error: unknown cache tier(s) {','.join(unknown)} "
              "(choose from image,tensor,result)", file=sys.stderr)
        return 2
    if args.policy not in POLICIES:
        print(f"error: unknown policy {args.policy!r} (choose from {','.join(POLICIES)})",
              file=sys.stderr)
        return 2

    from .parallel import ExperimentPoint, run_experiment_point

    try:
        workload = _workload_from_args(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    skews = _float_list(args.skews)
    budgets = _float_list(args.cache_mb)
    points = []
    for skew in skews:
        dataset = ZipfDataset(
            ImageNetLikeDataset(),
            catalog_size=args.catalog,
            skew=skew,
            seed=args.seed,
        )
        for cache_mb in budgets:
            if cache_mb > 0:
                budget = cache_mb * MIB
                cache = CacheConfig(
                    policy=args.policy,
                    image_cache_bytes=budget if "image" in tiers else 0.0,
                    tensor_cache_bytes=budget if "tensor" in tiers else 0.0,
                    result_cache_bytes=budget if "result" in tiers else 0.0,
                )
            else:
                cache = None  # zero budget = the exact uncached code path
            points.append(
                ExperimentPoint(
                    config=ExperimentConfig(
                        server=ServerConfig(
                            model=args.model,
                            preprocess_device=args.preprocess_device,
                            preprocess_batch_size=64,
                            cache=cache,
                        ),
                        dataset=dataset,
                        concurrency=args.concurrency,
                        warmup_requests=args.warmup,
                        measure_requests=args.requests,
                        seed=args.seed,
                    ),
                    # The sweep's per-skew Zipf dataset replaces the
                    # workload's own dataset so the skew axis survives;
                    # arrival timing (and open-loop mode) come from the
                    # workload.
                    workload=(workload.with_overrides(dataset=dataset)
                              if workload is not None else None),
                    tags=(
                        ("skew", skew),
                        ("catalog_size", args.catalog),
                        ("cache_mb", cache_mb),
                        ("policy", args.policy if cache is not None else "off"),
                        ("tiers", ",".join(tiers) if cache is not None else ""),
                    ),
                )
            )
    rows = _run_points(run_experiment_point, points, args.workers)
    for skew in skews:
        chart = {
            f"{row['cache_mb']:g} MiB" if row["cache_mb"] > 0 else "off":
                row["throughput"]
            for row in rows
            if row["skew"] == skew
        }
        print(bar_chart(chart, unit=" img/s",
                        title=f"Throughput vs cache size — Zipf s={skew:g}, "
                              f"catalog {args.catalog}, tiers {'+'.join(tiers)}"))
        print()
    _export(args, rows)
    return 0


def cmd_faces(args) -> int:
    from .parallel import FacePipelinePoint, run_face_pipeline_point

    try:
        workload = _workload_from_args(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    face_counts = _int_list(args.faces)
    brokers = _str_list(args.brokers)
    points = [
        FacePipelinePoint(
            pipeline=FacePipelineConfig(broker=broker, faces_per_frame=faces),
            concurrency=args.concurrency,
            warmup_requests=120,
            measure_requests=args.frames,
            seed=args.seed,
            workload=workload,
            tags=(("broker", broker), ("faces", faces)),
        )
        for faces in face_counts
        for broker in brokers
    ]
    rows = _run_points(run_face_pipeline_point, points, args.workers)
    for faces in face_counts:
        chart = {row["broker"]: row["throughput"]
                 for row in rows if row["faces"] == faces}
        print(bar_chart(chart, unit=" frames/s", title=f"{faces} faces/frame"))
        print()
    _export(args, rows)
    return 0


def cmd_models(args) -> int:
    rows = [
        {
            "name": spec.name,
            "task": spec.task,
            "gflops": spec.gflops,
            "params_millions": spec.params_millions,
            "input_size": spec.input_size,
            "hf_id": spec.hf_id,
        }
        for spec in sorted(MODEL_ZOO.values(), key=lambda s: s.gflops)
    ]
    print(
        format_table(
            ["name", "task", "GFLOPs", "params (M)", "input", "source"],
            [
                [r["name"], r["task"], f"{r['gflops']:.2f}",
                 f"{r['params_millions']:.1f}", str(r["input_size"]), r["hf_id"]]
                for r in rows
            ],
            title="Model zoo",
        )
    )
    _export(args, rows)
    return 0


def cmd_faults(args) -> int:
    from .faults.experiment import sweep_fault_rates
    from .serving.resilience import ResiliencePolicy, RetryPolicy

    try:
        fractions = _float_list(args.downtimes)
        for fraction in fractions:
            if not 0.0 < fraction < 1.0:
                raise ValueError(
                    f"downtime fractions must be in (0, 1), got {fraction}"
                )
        resilience = ResiliencePolicy(
            deadline_seconds=args.deadline_ms / 1e3 if args.deadline_ms > 0 else None,
            retry=RetryPolicy(max_attempts=args.max_attempts),
            max_backlog=args.max_backlog,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not fractions:
        print("error: no downtime fractions given", file=sys.stderr)
        return 1
    try:
        workload = _workload_from_args(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if workload is not None:
        load_kwargs = {"workload": workload}
        rate_label = workload.offered_rate_hint()
    else:
        load_kwargs = {"offered_rate": args.rate,
                       "dataset": reference_dataset(args.size)}
        rate_label = args.rate
    points = sweep_fault_rates(
        ServerConfig(model=args.model, preprocess_device=args.preprocess_device,
                     preprocess_batch_size=64),
        downtime_fractions=fractions,
        restart_seconds=args.restart_ms / 1e3,
        resilience=resilience,
        workers=args.workers if args.workers != 0 else os.cpu_count(),
        node_count=args.nodes,
        seed=args.seed,
        warmup_requests=args.warmup,
        measure_requests=args.requests,
        max_sim_seconds=args.max_seconds,
        **load_kwargs,
    )
    rows = [{"downtime_fraction": 0.0, **points[0].baseline.to_dict()}]
    for point in points:
        rows.append({
            "downtime_fraction": point.downtime_fraction,
            "goodput_ratio": point.goodput_ratio,
            "p99_ratio": point.p99_ratio,
            **point.result.to_dict(),
        })
    print(
        format_table(
            ["downtime", "goodput", "p99 (ms)", "timeouts", "retries", "shed", "faults"],
            [["0.0%", "100.0%",
              f"{points[0].baseline.metrics.latency.p99 * 1e3:.1f}",
              "0", "0", "0", "0"]] +
            [
                [f"{p.downtime_fraction * 100:.1f}%",
                 f"{p.goodput_ratio * 100:.1f}%",
                 f"{p.result.metrics.latency.p99 * 1e3:.1f}",
                 str(p.timeouts), str(p.retries),
                 str(p.result.metrics.shed_count),
                 str(p.result.fault_count)]
                for p in points
            ],
            title=f"GPU-crash tolerance — {args.model}, {args.nodes} node(s) @ {rate_label:.0f} req/s",
        )
    )
    print(bar_chart({f"{p.downtime_fraction * 100:.1f}%": p.goodput_ratio * 100 for p in points},
                    unit="%", title="Goodput vs per-GPU downtime"))
    _export(args, rows)
    return 0


def cmd_telemetry(args) -> int:
    from .telemetry import SloConfig, TelemetryConfig

    telemetry = TelemetryConfig(
        enabled=True,
        trace=True,
        trace_limit=args.trace_limit,
        trace_sample_every=args.sample_every,
        slo=SloConfig(latency_objective_seconds=args.slo_ms / 1e3, target=args.target),
        monitor_interval_seconds=args.monitor_interval_ms / 1e3,
    )
    if args.scenario == "faces":
        result = run_face_pipeline(
            FacePipelineConfig(),
            concurrency=args.concurrency,
            warmup_requests=args.warmup,
            measure_requests=args.requests,
            seed=args.seed,
            telemetry=telemetry,
        )
        title = "face pipeline"
    else:
        result = run_experiment(
            ExperimentConfig(
                server=ServerConfig(
                    model=args.model,
                    preprocess_device=args.preprocess_device,
                    preprocess_batch_size=64,
                ),
                dataset=reference_dataset(args.size),
                concurrency=args.concurrency,
                warmup_requests=args.warmup,
                measure_requests=args.requests,
                seed=args.seed,
                telemetry=telemetry,
            )
        )
        title = f"{args.model} ({args.preprocess_device} preprocessing)"
    session = result.telemetry
    report = session.slo_report()
    tracer = session.tracer
    print(
        format_table(
            ["metric", "value"],
            [
                ["throughput", f"{result.throughput:,.0f} img/s"],
                ["p99 latency", f"{result.p99_latency * 1e3:.2f} ms"],
                ["traced requests", str(len(tracer.requests))],
                ["trace drops", str(tracer.dropped)],
                ["metric series", str(len(session.registry))],
                ["SLO objective", f"{report.config.latency_objective_seconds * 1e3:.0f} ms @ "
                                  f"{report.config.target * 100:g}%"],
                ["SLO compliance", f"{report.compliance * 100:.2f}% "
                                   f"({'met' if report.met else 'MISSED'})"],
                ["error budget used", f"{report.error_budget_consumed * 100:.1f}%"],
            ],
            title=f"telemetry — {title}",
        )
    )
    for window in report.windows:
        print(f"burn rate over last {window.window_seconds:g}s: "
              f"{window.burn_rate:.2f}x budget ({window.bad}/{window.total} bad)")
    if args.trace:
        count = session.write_trace(args.trace)
        print(f"wrote {count} trace events to {args.trace} "
              "(open in https://ui.perfetto.dev)")
    if args.metrics:
        with open(args.metrics, "w") as handle:
            handle.write(session.prometheus_text())
        print(f"wrote Prometheus metrics to {args.metrics}")
    if args.metrics_json:
        with open(args.metrics_json, "w") as handle:
            handle.write(session.json_metrics())
        print(f"wrote JSON metrics to {args.metrics_json}")
    _export(args, [{"scenario": args.scenario, "slo_met": report.met,
                    "slo_compliance": report.compliance,
                    "error_budget_consumed": report.error_budget_consumed,
                    "traced_requests": len(tracer.requests),
                    **result.to_dict()}])
    return 0 if report.met else 1


def cmd_cluster(args) -> int:
    from .cluster import ClusterConfig, run_cluster_experiment
    from .telemetry.slo import SloConfig
    from .workload import Workload

    workload = _workload_from_args(args)
    if workload is None:
        workload = Workload.constant(args.rate, duration_seconds=args.duration)
    cluster = ClusterConfig(
        cells=args.cells,
        nodes_per_cell=args.nodes_per_cell,
        shards=args.shards,
        routing=args.routing,
        execution=args.execution,
        workers=args.workers or None,
        base_latency_seconds=args.base_latency_us / 1e6,
        jitter_latency_seconds=args.jitter_latency_us / 1e6,
        topology_seed=args.topology_seed,
        fluid=args.fluid,
        fluid_hot_threshold=args.fluid_hot_threshold,
    )
    slo = None
    if args.slo_ms is not None:
        slo = SloConfig(latency_objective_seconds=args.slo_ms / 1e3,
                        target=args.target)
    trace_sessions = args.trace_sessions
    if args.trace_out and trace_sessions == 0:
        trace_sessions = 8  # tracing requested: sample a handful of sessions
    result = run_cluster_experiment(
        ServerConfig(model=args.model, preprocess_device=args.preprocess_device),
        cluster,
        workload,
        seed=args.seed,
        max_requests=args.max_requests,
        max_sim_seconds=args.max_seconds,
        slo=slo,
        trace_sessions=trace_sessions,
        trace_limit=args.trace_limit,
        timeseries_interval=(args.timeseries_interval
                             if args.timeseries_out else None),
    )
    metrics = result.metrics
    rows = [
        ["nodes", f"{result.node_count:,} ({cluster.cells} cells x "
                  f"{cluster.nodes_per_cell})"],
        ["shards", f"{result.shard_count} ({result.mode}, "
                   f"{result.workers} worker(s))"],
        ["routing", cluster.routing],
        ["issued", f"{result.issued:,}"],
        ["completed", f"{result.completed:,}"],
        ["throughput", f"{metrics.throughput:,.1f} img/s"],
        ["p50 latency", f"{metrics.latency.p50 * 1e3:.2f} ms"],
        ["p99 latency", f"{metrics.latency.p99 * 1e3:.2f} ms"],
        ["epochs", f"{result.epochs:,} x {result.epoch_seconds * 1e3:g} ms"],
        ["cells touched", f"{result.cells_touched}/{cluster.cells}"],
        ["wall clock", f"{result.wall_seconds:.2f} s"],
    ]
    if result.timeouts:
        rows.append(["timeouts", f"{result.timeouts:,}"])
    if result.fluid_served:
        rows.append(["fluid served", f"{result.fluid_served:,}"])
    if result.slo is not None:
        rows.append(["SLO compliance",
                     f"{result.slo.compliance * 100:.2f}% "
                     f"({'met' if result.slo.met else 'MISSED'})"])
    print(format_table(["metric", "value"], rows,
                       title=f"cluster — {workload.name}"))
    if args.per_shard:
        print(format_table(
            ["shard", "cells", "touched", "delivered", "completed"],
            [[str(s.shard_id), str(s.cells), str(s.cells_touched),
              str(s.delivered), str(s.completed)] for s in result.shards],
            title="per-shard",
        ))
    if args.trace_out:
        count = result.write_trace(args.trace_out)
        traced = len({record.trace_id for record in result.traces})
        print(f"wrote {count} trace events for {traced} session trace(s) "
              f"to {args.trace_out} (open in Perfetto)")
    if args.timeseries_out:
        series = result.write_timeseries(args.timeseries_out)
        print(f"wrote {series} time series to {args.timeseries_out} "
              f"(view with `repro top --cluster {args.timeseries_out}`)")
    _export(args, [result.to_dict()])
    if result.slo is not None and not result.slo.met:
        return 1
    return 0


def _print_cluster_bench(data: Dict) -> bool:
    scaling = data["scaling"]
    rows = [
        ["topology", f"{scaling['cells']} cells x {scaling['nodes_per_cell']} "
                     f"nodes ({scaling['node_count']} total)"],
        ["requests", f"{scaling['requests']:,}"],
        ["serial wall", f"{scaling['serial_wall_seconds']:.2f} s"],
    ]
    identical = True
    for run in scaling["runs"]:
        identical = identical and run["bit_identical"]
        rows.append([
            f"{run['shards']} shard(s)",
            f"wall {run['wall_seconds']:.2f} s, "
            f"efficiency {run['parallel_efficiency']:.0%}, "
            f"identical {run['bit_identical']}",
        ])
    day = data.get("day")
    if day is not None:
        rows.append(["10k-node day",
                     f"{day['issued']:,} requests / 24 h simulated in "
                     f"{day['wall_seconds']:.2f} s "
                     f"({day['cells_touched']} of {day['cells']} cells hot)"])
    print(format_table(
        ["probe", "value"], rows,
        title=f"cluster bench — {'smoke' if data['smoke'] else 'full'} mode, "
              f"{data['host']['cpu_count']} CPU(s)",
    ))
    return identical


def _compare_baseline(args, fresh_path: str) -> int:
    """Bench-history gate: fail when a throughput figure regresses."""
    from .analysis.bench_history import compare_bench_files

    try:
        comparisons = compare_bench_files(
            fresh_path, args.baseline, tolerance=args.tolerance)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_table(
        ["figure", "baseline", "fresh", "change", "verdict"],
        [comparison.row() for comparison in comparisons],
        title=f"bench history vs {args.baseline} "
              f"(tolerance {args.tolerance:.0%})",
    ))
    regressed = [c for c in comparisons if c.regressed]
    if regressed:
        for comparison in regressed:
            print(f"regression: {comparison.figure} fell "
                  f"{-comparison.change:.1%} below baseline", file=sys.stderr)
        return 1
    return 0


def cmd_bench(args) -> int:
    from .parallel.bench import run_bench, write_bench

    if args.baseline and not args.out:
        print("error: --baseline requires --out (the fresh results file)",
              file=sys.stderr)
        return 2
    if args.cluster:
        from .cluster.bench import run_cluster_bench

        data = run_cluster_bench(smoke=args.smoke)
        identical = _print_cluster_bench(data)
        if args.out:
            write_bench(args.out, data)
            print(f"wrote {args.out}")
        if args.baseline:
            gate = _compare_baseline(args, args.out)
            if gate:
                return gate
        return 0 if identical else 1

    data = run_bench(smoke=args.smoke, workers=args.workers or None)
    engine = data["engine"]
    sweep = data["sweep"]
    rows = [
        ["timeout events/s", f"{engine['timeout_events_per_sec']:,.0f}"],
        ["store ops/s", f"{engine['store_ops_per_sec']:,.0f}"],
        ["store drain/s", f"{engine['store_drain_per_sec']:,.0f}"],
    ]
    for name, probes in sorted(data.get("schedulers", {}).items()):
        rows.append(
            [f"{name}: depth-1 events/s",
             f"{probes['timeout_events_per_sec']:,.0f}"]
        )
        rows.append(
            [f"{name}: depth-10k events/s",
             f"{probes['concurrent_events_per_sec']:,.0f}"]
        )
    rows += [
        ["sweep points", str(sweep["points"])],
        ["serial wall", f"{sweep['serial_wall_seconds']:.2f} s"],
        ["parallel wall", f"{sweep['parallel_wall_seconds']:.2f} s "
                          f"({sweep['parallel_workers']} worker(s))"],
        ["speedup", f"{sweep['speedup']:.2f}x"],
        ["persistent warm wall", f"{sweep['persistent_wall_seconds']:.2f} s "
                                 f"(chunk={sweep['persistent_chunk_size']})"],
        ["bit-identical", str(sweep["bit_identical"])],
        ["persistent bit-identical", str(sweep["persistent_bit_identical"])],
    ]
    print(
        format_table(
            ["probe", "value"],
            rows,
            title=f"simulator bench — {'smoke' if args.smoke else 'full'} mode, "
                  f"{data['host']['cpu_count']} CPU(s)",
        )
    )
    if args.out:
        write_bench(args.out, data)
        print(f"wrote {args.out}")
    if args.baseline:
        gate = _compare_baseline(args, args.out)
        if gate:
            return gate
    identical = sweep["bit_identical"] and sweep["persistent_bit_identical"]
    return 0 if identical else 1


def cmd_plan(args) -> int:
    plan = plan_capacity(
        ServerConfig(model=args.model, preprocess_device=args.preprocess_device,
                     preprocess_batch_size=64),
        offered_rate=args.rate,
        p99_slo_seconds=args.slo_ms / 1e3,
        dataset=reference_dataset(args.size),
        max_nodes=args.max_nodes,
        warmup_requests=max(1000, int(args.rate * 0.2)),
        measure_requests=max(2000, int(args.rate * 0.4)),
        seed=args.seed,
    )
    print(f"offered load : {plan.offered_rate:,.0f} req/s")
    print(f"p99 SLO      : {plan.p99_slo_seconds * 1e3:.0f} ms")
    print(f"nodes needed : {plan.nodes_required}")
    print(f"achieved p99 : {plan.achieved_p99 * 1e3:.1f} ms")
    print(bar_chart({f"{n} node(s)": p99 * 1e3 for n, p99 in plan.evaluations.items()},
                    unit=" ms", title="p99 by fleet size"))
    rows = [
        {"nodes": n, "p99_ms": p99 * 1e3, "meets_slo": p99 <= plan.p99_slo_seconds}
        for n, p99 in plan.evaluations.items()
    ]
    _export(args, rows)
    return 0


def cmd_workload_synthesize(args) -> int:
    from .workload import Workload, synthesize_trace, trace_digest

    try:
        workload = Workload.parse(args.spec)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if workload.is_replay:
        print("error: spec is already a trace file; nothing to synthesize",
              file=sys.stderr)
        return 2
    if workload.duration_seconds is None:
        print("error: spec needs duration= (an unbounded workload never "
              "finishes recording)", file=sys.stderr)
        return 2
    count = synthesize_trace(workload, args.out, seed=args.seed)
    digest = trace_digest(args.out)
    print(f"wrote {count} events to {args.out}")
    print(f"sha256 (uncompressed): {digest}")
    _export(args, [{"path": args.out, "workload": workload.name,
                    "seed": args.seed, "events": count, "digest": digest}])
    return 0


def _flatten_describe(data: Dict, prefix: str = "") -> List[List[str]]:
    rows = []
    for key, value in data.items():
        label = f"{prefix}{key}"
        if isinstance(value, dict):
            rows.extend(_flatten_describe(value, prefix=f"{label}."))
        else:
            rows.append([label, f"{value:g}" if isinstance(value, float) else str(value)])
    return rows


def cmd_workload_describe(args) -> int:
    import json

    from .workload import Workload, describe_trace

    target = args.target
    if os.path.exists(target):
        stats = describe_trace(target)
        title = f"trace {target}"
    else:
        try:
            workload = Workload.parse(target)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        stats = workload.describe()
        title = f"workload {workload.name}"
    print(format_table(["field", "value"], _flatten_describe(stats), title=title))
    _export(args, [{key: (json.dumps(value) if isinstance(value, dict) else value)
                    for key, value in stats.items()}])
    return 0


def cmd_workload_replay(args) -> int:
    from .serving.runner import run_open_loop
    from .workload import Workload

    try:
        workload = Workload.replay(args.trace)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = run_open_loop(
        ExperimentConfig(
            server=ServerConfig(model=args.model,
                                preprocess_device=args.preprocess_device,
                                preprocess_batch_size=64),
            dataset=reference_dataset(args.size),
            warmup_requests=args.warmup,
            measure_requests=args.requests,
            seed=args.seed,
            max_sim_seconds=args.max_seconds,
        ),
        workload=workload,
    )
    phase_rows = [
        [key.removeprefix("workload_phase_"), f"{value:,.0f}"]
        for key, value in sorted(result.metrics.extras.items())
        if key.startswith("workload_phase_")
    ]
    print(
        format_table(
            ["metric", "value"],
            [
                ["throughput", f"{result.throughput:,.2f} img/s"],
                ["mean latency", f"{result.mean_latency * 1e3:.2f} ms"],
                ["p99 latency", f"{result.p99_latency * 1e3:.2f} ms"],
                ["measured requests", f"{result.metrics.completed:,}"],
            ] + [[f"phase {name}", count] for name, count in phase_rows],
            title=f"trace replay — {workload.name} on {args.model} "
                  f"({args.preprocess_device} preprocessing)",
        )
    )
    _export(args, [{"workload": workload.name, "trace": args.trace,
                    **result.to_dict()}])
    return 0


# -- parser ---------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulated DNN-serving experiments (DAC'24 'Beyond Inference')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="run one simulated serving experiment")
    run_cmd.add_argument("--model", default="resnet-50", choices=sorted(MODEL_ZOO))
    _add_preprocess_device_flag(run_cmd, default="gpu", choices=["cpu", "gpu"])
    run_cmd.add_argument("--size", default="medium", choices=["small", "medium", "large"])
    run_cmd.add_argument("--concurrency", type=int, default=512)
    run_cmd.add_argument("--gpus", type=int, default=1)
    run_cmd.add_argument("--runtime", default="tensorrt",
                         choices=["tensorrt", "onnxruntime", "pytorch"])
    run_cmd.add_argument("--seed", type=int, default=0)
    run_cmd.add_argument("--trace", help="write a chrome://tracing JSON of request timelines")
    _add_export_flags(run_cmd)
    run_cmd.set_defaults(func=cmd_run)

    serve = sub.add_parser(
        "serve",
        help="live asyncio serving node over HTTP; --replay compares "
             "a recorded trace under the virtual and wall clocks")
    serve.add_argument("--model", default="resnet-50", choices=sorted(MODEL_ZOO))
    _add_preprocess_device_flag(serve, default="gpu", choices=["cpu", "gpu"])
    serve.add_argument("--size", default="medium", choices=["small", "medium", "large"],
                       help="reference image class for replayed requests")
    serve.add_argument("--gpus", type=int, default=1)
    serve.add_argument("--runtime", default="tensorrt",
                       choices=["tensorrt", "onnxruntime", "pytorch"])
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="HTTP port (0 picks a free port)")
    serve.add_argument("--time-scale", type=float, default=1.0,
                       help="virtual seconds per wall second (live mode) / "
                            "trace compression factor (replay mode)")
    serve.add_argument("--grace-seconds", type=float, default=5.0,
                       help="batcher-drain deadline on shutdown")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for N wall seconds then exit "
                            "(default: until SIGINT/SIGTERM)")
    serve.add_argument("--scrape-interval", type=float, default=1.0,
                       help="metrics scrape cadence in virtual seconds "
                            "feeding /metrics/history (0 disables)")
    serve.add_argument("--history-points", type=int, default=720,
                       help="ring capacity per time series")
    serve.add_argument("--slo-ms", type=float, default=200.0,
                       help="latency objective (ms) scored into SLO burn "
                            "windows (0 disables)")
    serve.add_argument("--target", type=float, default=0.99,
                       help="required good fraction for --slo-ms")
    serve.add_argument("--replay", metavar="TRACE",
                       help="replay a repro-trace-v1 file through both "
                            "clocks and report the sim-vs-live gap")
    serve.add_argument("--requests", type=int, default=500,
                       help="replay: measurement completion target")
    serve.add_argument("--warmup", type=int, default=0,
                       help="replay: completions discarded as warm-up")
    serve.add_argument("--max-seconds", type=float, default=600.0,
                       help="replay: cap on simulated seconds")
    serve.add_argument("--fast-forward", action="store_true",
                       help="replay without sleeping: deterministic "
                            "asyncio dispatch, metrics match the DES exactly")
    _add_export_flags(serve)
    serve.set_defaults(func=cmd_serve)

    breakdown = sub.add_parser("breakdown", help="zero-load latency breakdown")
    breakdown.add_argument("--model", default="vit-base-16", choices=sorted(MODEL_ZOO))
    breakdown.add_argument("--size", default="medium", choices=["small", "medium", "large"])
    _add_preprocess_device_flag(breakdown, default="cpu,gpu",
                                help_text="comma-separated devices")
    _add_export_flags(breakdown)
    breakdown.set_defaults(func=cmd_breakdown)

    sweep = sub.add_parser("sweep", help="concurrency sweep")
    sweep.add_argument("--model", default="resnet-50", choices=sorted(MODEL_ZOO))
    _add_preprocess_device_flag(sweep, default="gpu", choices=["cpu", "gpu"])
    sweep.add_argument("--size", default="medium", choices=["small", "medium", "large"])
    sweep.add_argument("--concurrencies", default="1,16,64,256,1024")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--repeats", type=int, default=1,
                       help="with --workload: open-loop runs at consecutive seeds")
    _add_workload_flag(sweep, "drive the sweep open-loop from this workload "
                              "(ignores --concurrencies)")
    _add_workers_flag(sweep)
    _add_export_flags(sweep)
    sweep.set_defaults(func=cmd_sweep)

    cache = sub.add_parser("cache", help="content-cache sweep (skew x size x tiers)")
    cache.add_argument("--model", default="resnet-50", choices=sorted(MODEL_ZOO))
    _add_preprocess_device_flag(cache, default="gpu", choices=["cpu", "gpu"])
    cache.add_argument("--skews", default="0.0,0.8,1.2",
                       help="comma-separated Zipf skew exponents")
    cache.add_argument("--cache-mb", default="0,64,256", dest="cache_mb",
                       help="comma-separated per-tier budgets in MiB (0 = caching off)")
    cache.add_argument("--tiers", default="image,tensor",
                       help="comma-separated tiers to enable: image,tensor,result")
    cache.add_argument("--policy", default="lru", help="eviction policy (lru|lfu|s3fifo)")
    cache.add_argument("--catalog", type=int, default=200,
                       help="distinct images in the Zipf catalog")
    cache.add_argument("--concurrency", type=int, default=64)
    cache.add_argument("--warmup", type=int, default=300)
    cache.add_argument("--requests", type=int, default=1500)
    cache.add_argument("--seed", type=int, default=0)
    _add_workload_flag(cache, "drive each cache point open-loop from this "
                              "workload (its dataset is replaced per skew)")
    _add_workers_flag(cache)
    _add_export_flags(cache)
    cache.set_defaults(func=cmd_cache)

    faces = sub.add_parser("faces", help="multi-DNN broker comparison")
    faces.add_argument("--brokers", default="fused,redis,kafka")
    faces.add_argument("--faces", default="1,9,25")
    faces.add_argument("--concurrency", type=int, default=96)
    faces.add_argument("--frames", type=int, default=800)
    faces.add_argument("--seed", type=int, default=0)
    _add_workload_flag(faces, "frame dataset/popularity for the pipeline "
                              "(closed-loop; arrivals ignored)")
    _add_workers_flag(faces)
    _add_export_flags(faces)
    faces.set_defaults(func=cmd_faces)

    faults = sub.add_parser("faults", help="fault-tolerance sweep (GPU crashes)")
    faults.add_argument("--model", default="resnet-50", choices=sorted(MODEL_ZOO))
    _add_preprocess_device_flag(faults, default="gpu", choices=["cpu", "gpu"])
    faults.add_argument("--size", default="medium", choices=["small", "medium", "large"])
    faults.add_argument("--nodes", type=int, default=2)
    faults.add_argument("--rate", type=float, default=150.0, help="offered req/s")
    faults.add_argument("--downtimes", default="0.01,0.02,0.05",
                        help="comma-separated per-GPU downtime fractions")
    faults.add_argument("--restart-ms", type=float, default=500.0,
                        help="GPU restart time per crash (ms)")
    faults.add_argument("--deadline-ms", type=float, default=250.0,
                        help="per-attempt deadline (ms); 0 disables deadlines")
    faults.add_argument("--max-attempts", type=int, default=3)
    faults.add_argument("--max-backlog", type=int, default=None,
                        help="shed new requests beyond this balancer backlog")
    faults.add_argument("--warmup", type=int, default=200)
    faults.add_argument("--requests", type=int, default=1000)
    faults.add_argument("--max-seconds", type=float, default=60.0)
    faults.add_argument("--seed", type=int, default=0)
    _add_workload_flag(faults, "fleet load during the fault sweep "
                               "(overrides --rate/--size)")
    _add_workers_flag(faults)
    _add_export_flags(faults)
    faults.set_defaults(func=cmd_faults)

    telemetry = sub.add_parser(
        "telemetry",
        help="run one scenario with full observability (trace + metrics + SLO)",
    )
    telemetry.add_argument("--scenario", default="serve", choices=["serve", "faces"])
    telemetry.add_argument("--model", default="resnet-50", choices=sorted(MODEL_ZOO))
    _add_preprocess_device_flag(telemetry, default="gpu", choices=["cpu", "gpu"])
    telemetry.add_argument("--size", default="medium",
                           choices=["small", "medium", "large"])
    telemetry.add_argument("--concurrency", type=int, default=64)
    telemetry.add_argument("--warmup", type=int, default=200)
    telemetry.add_argument("--requests", type=int, default=1000)
    telemetry.add_argument("--seed", type=int, default=0)
    telemetry.add_argument("--slo-ms", type=float, default=200.0,
                           help="latency objective (ms)")
    telemetry.add_argument("--target", type=float, default=0.99,
                           help="required good fraction, e.g. 0.99")
    telemetry.add_argument("--trace", help="write a Perfetto timeline trace JSON")
    telemetry.add_argument("--trace-limit", type=int, default=2000,
                           help="max requests kept in the trace")
    telemetry.add_argument("--sample-every", type=int, default=1,
                           help="trace every Nth request")
    telemetry.add_argument("--monitor-interval-ms", type=float, default=5.0,
                           help="queue-depth/memory sampling period (ms)")
    telemetry.add_argument("--metrics", help="write Prometheus text metrics to FILE")
    telemetry.add_argument("--metrics-json", help="write JSON metrics to FILE")
    _add_export_flags(telemetry)
    telemetry.set_defaults(func=cmd_telemetry)

    bench = sub.add_parser(
        "bench",
        help="simulator performance harness (events/sec + parallel sweep)",
    )
    bench.add_argument("--out", help="write results JSON (e.g. BENCH_parallel.json)")
    bench.add_argument("--smoke", action="store_true",
                       help="shrunk probes for CI (~10x smaller)")
    bench.add_argument("--workers", type=int, default=0,
                       help="pool size for the sweep probe (0 = one per CPU core)")
    bench.add_argument("--cluster", action="store_true",
                       help="run the cluster shard-scaling harness instead "
                            "(writes BENCH_cluster.json shape)")
    bench.add_argument("--baseline", metavar="FILE",
                       help="bench-history gate: compare the fresh --out "
                            "results against this committed baseline and "
                            "exit 1 on a throughput regression")
    bench.add_argument("--tolerance", type=float, default=0.20,
                       help="allowed relative throughput drop vs --baseline")
    bench.set_defaults(func=cmd_bench)

    cluster = sub.add_parser(
        "cluster",
        help="sharded fleet simulation (cells behind a global routing tier)",
        description="Simulate a cluster of independent cells behind a "
                    "global routing tier, packed onto one or more "
                    "execution shards advanced in conservative lockstep "
                    "epochs.  Results are invariant to --shards and "
                    "--execution; see docs/MODELING.md §12.",
    )
    cluster.add_argument("--cells", type=int, default=8,
                         help="routing cells (independent balancer groups)")
    cluster.add_argument("--nodes-per-cell", type=int, default=4)
    cluster.add_argument("--shards", type=int, default=1,
                         help="execution shards (never changes results)")
    cluster.add_argument("--routing", default="hash",
                         choices=["hash", "round_robin", "least_backlog"])
    cluster.add_argument("--execution", default="serial",
                         choices=["serial", "process"])
    cluster.add_argument("--workers", type=int, default=0,
                         help="pool size for process execution "
                              "(0 = one per shard)")
    cluster.add_argument("--model", default="resnet-50",
                         choices=sorted(MODEL_ZOO))
    _add_preprocess_device_flag(cluster, default="gpu", choices=["cpu", "gpu"])
    cluster.add_argument("--rate", type=float, default=200.0,
                         help="offered req/s when no --workload is given")
    cluster.add_argument("--duration", type=float, default=30.0,
                         help="seconds of constant load when no --workload")
    _add_workload_flag(cluster, "cluster traffic")
    cluster.add_argument("--base-latency-us", type=float, default=500.0,
                         help="one-way router<->cell latency floor (µs)")
    cluster.add_argument("--jitter-latency-us", type=float, default=0.0,
                         help="per-cell deterministic latency spread (µs)")
    cluster.add_argument("--topology-seed", type=int, default=0)
    cluster.add_argument("--fluid", action="store_true",
                         help="serve cold cells analytically at zero-load "
                              "latency until they turn hot")
    cluster.add_argument("--fluid-hot-threshold", type=int, default=32)
    cluster.add_argument("--max-requests", type=int, default=None)
    cluster.add_argument("--max-seconds", type=float, default=None,
                         help="hard wall on simulated seconds")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--slo-ms", type=float, default=None,
                         help="latency objective (ms); enables SLO tracking")
    cluster.add_argument("--target", type=float, default=0.99,
                         help="required good fraction for --slo-ms")
    cluster.add_argument("--per-shard", action="store_true",
                         help="print the per-shard accounting table")
    cluster.add_argument("--trace-out", metavar="FILE",
                         help="write a merged cross-shard Perfetto trace "
                              "of sampled user sessions")
    cluster.add_argument("--trace-sessions", type=int, default=0,
                         help="distinct user sessions to trace end to end "
                              "(0 = off; --trace-out defaults it to 8)")
    cluster.add_argument("--trace-limit", type=int, default=2000,
                         help="max traced requests kept per cell")
    cluster.add_argument("--timeseries-out", metavar="FILE",
                         help="export windowed cluster time series as "
                              "JSONL (.gz supported); view with "
                              "`repro top --cluster FILE`")
    cluster.add_argument("--timeseries-interval", type=float, default=60.0,
                         help="aggregation window for --timeseries-out "
                              "(simulated seconds)")
    _add_export_flags(cluster)
    cluster.set_defaults(func=cmd_cluster)

    top = sub.add_parser(
        "top",
        help="live terminal dashboard of a serving node's time series",
        description="Poll a live node's /metrics/history and /stats "
                    "endpoints (or load a cluster run's exported "
                    "time-series JSONL) and render sparkline rows plus "
                    "SLO burn in the terminal.",
    )
    top.add_argument("--url", default="http://127.0.0.1:8080",
                     help="base URL of a `repro serve` node")
    top.add_argument("--cluster", metavar="FILE",
                     help="render an exported cluster time-series JSONL "
                          "(from `repro cluster --timeseries-out`) "
                          "instead of polling a node")
    top.add_argument("--interval", type=float, default=2.0,
                     help="poll cadence in wall seconds")
    top.add_argument("--count", type=int, default=None,
                     help="frames to render then exit (default: forever)")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit")
    top.add_argument("--plain", action="store_true",
                     help="no ANSI screen clearing between frames")
    top.add_argument("--width", type=int, default=100,
                     help="frame width in columns")
    top.add_argument("--series", action="append", metavar="PATTERN",
                     help="substring filter on series names (repeatable; "
                          "default shows rates, quantiles, and SLO burn)")
    top.set_defaults(func=cmd_top)

    models = sub.add_parser("models", help="list the model zoo")
    _add_export_flags(models)
    models.set_defaults(func=cmd_models)

    workload = sub.add_parser(
        "workload",
        help="synthesize, describe, or replay workload traces",
        description="Trace-driven workloads: record a synthesized day "
                    "(diurnal curves, flash crowds, regional mixes, user "
                    "sessions) to a compact gzip trace, inspect it, or "
                    "replay it through the open-loop runner.  Specs: "
                    "constant:rate=150 | diurnal:mean=120,swing=0.6 | "
                    "flash:mean=100,at=300,len=60,peak=6 | "
                    "regions:mean=90,count=3 — shared keys duration=, "
                    "sessions=1, zipf=SKEW, catalog=N.",
    )
    wsub = workload.add_subparsers(dest="action", required=True)

    synth = wsub.add_parser("synthesize", help="record a workload spec to a trace file")
    synth.add_argument("--spec", required=True,
                       help="workload spec with duration=, e.g. "
                            "'diurnal:mean=120,swing=0.6,duration=3600'")
    synth.add_argument("--out", required=True, help="trace path (*.jsonl or *.jsonl.gz)")
    synth.add_argument("--seed", type=int, default=0)
    _add_export_flags(synth)
    synth.set_defaults(func=cmd_workload_synthesize)

    describe_w = wsub.add_parser("describe", help="summarize a trace file or workload spec")
    describe_w.add_argument("target", help="trace path or workload spec")
    _add_export_flags(describe_w)
    describe_w.set_defaults(func=cmd_workload_describe)

    replay = wsub.add_parser("replay",
                             help="replay a recorded trace through the open-loop runner")
    replay.add_argument("trace", help="trace path")
    replay.add_argument("--model", default="resnet-50", choices=sorted(MODEL_ZOO))
    _add_preprocess_device_flag(replay, default="gpu", choices=["cpu", "gpu"])
    replay.add_argument("--size", default="medium", choices=["small", "medium", "large"])
    replay.add_argument("--warmup", type=int, default=0,
                        help="completions before the measurement window arms")
    replay.add_argument("--requests", type=int, default=1_000_000,
                        help="measurement-window completion target (the "
                             "replay also ends when the trace runs dry)")
    replay.add_argument("--max-seconds", type=float, default=DAY_SECONDS,
                        help="hard wall on simulated seconds")
    replay.add_argument("--seed", type=int, default=0)
    _add_export_flags(replay)
    replay.set_defaults(func=cmd_workload_replay)

    plan = sub.add_parser("plan", help="size a fleet for a rate + p99 SLO")
    plan.add_argument("--model", default="resnet-50", choices=sorted(MODEL_ZOO))
    _add_preprocess_device_flag(plan, default="gpu", choices=["cpu", "gpu"])
    plan.add_argument("--size", default="medium", choices=["small", "medium", "large"])
    plan.add_argument("--rate", type=float, required=True, help="offered req/s")
    plan.add_argument("--slo-ms", type=float, required=True, help="p99 SLO in ms")
    plan.add_argument("--max-nodes", type=int, default=16)
    plan.add_argument("--seed", type=int, default=0)
    _add_export_flags(plan)
    plan.set_defaults(func=cmd_plan)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
