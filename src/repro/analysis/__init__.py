"""Result analysis: breakdowns, figure tables, paper comparison."""

from .breakdown import (
    LatencyBreakdown,
    breakdown_from_metrics,
    cache_summary,
    resilience_summary,
)
from .charts import bar_chart, sparkline, stacked_bar_chart
from .compare import ClaimSet, PaperClaim
from .export import (
    metrics_to_dict,
    result_to_dict,
    rows_to_csv,
    rows_to_json,
    write_csv,
    write_json,
)
from .tables import format_ms, format_pct, format_rate, format_table
from .tracing import (
    TraceCollector,
    requests_to_trace_events,
    timeline_trace_events,
    write_chrome_trace,
    write_perfetto_trace,
)

__all__ = [
    "ClaimSet",
    "bar_chart",
    "metrics_to_dict",
    "result_to_dict",
    "rows_to_csv",
    "rows_to_json",
    "sparkline",
    "stacked_bar_chart",
    "write_csv",
    "write_json",
    "TraceCollector",
    "requests_to_trace_events",
    "timeline_trace_events",
    "write_chrome_trace",
    "write_perfetto_trace",
    "LatencyBreakdown",
    "PaperClaim",
    "breakdown_from_metrics",
    "cache_summary",
    "format_ms",
    "format_pct",
    "format_rate",
    "format_table",
    "resilience_summary",
]
