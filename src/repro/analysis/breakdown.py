"""Latency-breakdown post-processing.

Turns :class:`~repro.core.metrics.RunMetrics` span ledgers into the
groupings the paper plots: *preprocessing* vs *DNN inference* vs *other
overheads* (Fig. 6), the inference-time percentage (Fig. 4 bottom), and
queue share (Fig. 5 right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.metrics import RunMetrics
from ..core.request import (
    SPAN_FRONTEND,
    SPAN_INFERENCE,
    SPAN_POSTPROCESS,
    SPAN_PREPROCESS,
    SPAN_PREPROCESS_WAIT,
    SPAN_QUEUE,
    SPAN_TRANSFER,
)

__all__ = ["LatencyBreakdown", "breakdown_from_metrics", "cache_summary", "resilience_summary"]

#: Spans grouped the way the paper's figures group them.
PREPROCESS_SPANS = (SPAN_PREPROCESS_WAIT, SPAN_PREPROCESS)
OVERHEAD_SPANS = (SPAN_FRONTEND, SPAN_QUEUE, SPAN_TRANSFER, SPAN_POSTPROCESS)


@dataclass(frozen=True)
class LatencyBreakdown:
    """Mean request latency split into the paper's categories (seconds)."""

    total: float
    preprocess: float
    inference: float
    queue: float
    transfer: float
    other: float

    @property
    def preprocess_fraction(self) -> float:
        """Preprocessing share of latency — the Fig. 6 headline number."""
        return self.preprocess / self.total if self.total > 0 else 0.0

    @property
    def inference_fraction(self) -> float:
        """DNN share of latency — Fig. 4 bottom."""
        return self.inference / self.total if self.total > 0 else 0.0

    @property
    def queue_fraction(self) -> float:
        """Queueing share of latency — Fig. 5 right."""
        return self.queue / self.total if self.total > 0 else 0.0

    @property
    def overhead_fraction(self) -> float:
        """Everything that is not DNN inference."""
        return 1.0 - self.inference_fraction


def breakdown_from_metrics(metrics: RunMetrics) -> LatencyBreakdown:
    """Group a run's mean spans into the paper's categories."""
    total = metrics.latency.mean
    preprocess = sum(metrics.span_mean(span) for span in PREPROCESS_SPANS)
    inference = metrics.span_mean(SPAN_INFERENCE)
    queue = metrics.span_mean(SPAN_QUEUE)
    transfer = metrics.span_mean(SPAN_TRANSFER)
    accounted = preprocess + inference + queue + transfer
    other = max(0.0, total - accounted)
    return LatencyBreakdown(
        total=total,
        preprocess=preprocess,
        inference=inference,
        queue=queue,
        transfer=transfer,
        other=other,
    )


def cache_summary(metrics: RunMetrics) -> Dict[str, float]:
    """Cache outcome counters for a run (:mod:`repro.cache`).

    Combines the window-gated per-tier hit counts with the run-global
    tier counters the runner folds into ``extras``.  All values are zero
    for an uncached run, so the summary is safe to report
    unconditionally.
    """
    out: Dict[str, float] = {
        "completed": float(metrics.completed),
        "cache_hit_count": float(metrics.cache_hit_count),
        "cache_hit_fraction": metrics.cache_hit_fraction,
    }
    for tier in ("result", "tensor", "image"):
        out[f"cache_hits_{tier}"] = float(metrics.cache_hits.get(tier, 0))
    for key, value in sorted(metrics.extras.items()):
        if key.startswith("cache_"):
            out[key] = value
    return out


def resilience_summary(metrics: RunMetrics) -> Dict[str, float]:
    """Fault-handling outcome counters for a run.

    ``success_fraction`` is the SLO-attainment number: requests that
    completed within their deadline over everything the system accepted
    (successes + timeouts + shed).  All values are zero for a fault-free
    run, so the summary is safe to report unconditionally.
    """
    return {
        "completed": metrics.completed,
        "timeout_count": metrics.timeout_count,
        "retry_count": metrics.retry_count,
        "shed_count": metrics.shed_count,
        "success_fraction": metrics.success_fraction,
    }
