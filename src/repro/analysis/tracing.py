"""Chrome/Perfetto trace export of request timelines.

Two exporters share the Trace Event Format (the JSON consumed by
``chrome://tracing`` and https://ui.perfetto.dev):

- :func:`requests_to_trace_events` — the legacy duration-ledger view:
  one row per request, slices laid back-to-back from arrival.  Faithful
  only for strictly sequential stages; kept for requests recorded
  without a tracer.
- :func:`timeline_trace_events` — the timestamped view built from
  request *timelines* (``(name, start, end)`` intervals recorded by an
  armed :class:`~repro.telemetry.tracer.Tracer`).  Slices sit at their
  true simulation times, so queue/compute overlap is visible; device
  spans are grouped onto one track per (GPU, span) with identical batch
  intervals deduplicated into a single shared slice; flow arrows link
  each member request to that shared slice; and an optional
  :class:`~repro.sim.monitor.Monitor` contributes counter tracks (queue
  depth, GPU memory, ...).

The per-request span order and grouping conventions match how Triton
reports queue/compute durations, so traces read like a real serving
deployment's.
"""

from __future__ import annotations

import json
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.request import ALL_SPANS, InferenceRequest
from ..telemetry.spans import KIND_COMPUTE, KIND_TRANSFER, span_kind

__all__ = [
    "TraceCollector",
    "requests_to_trace_events",
    "write_chrome_trace",
    "timeline_trace_events",
    "write_perfetto_trace",
]

_CATEGORY = "serving"
_FLOW_CATEGORY = "batch"

#: Process ids of the three track groups in a timeline trace.
PID_DEVICES = 0
PID_REQUESTS = 1
PID_COUNTERS = 2


def requests_to_trace_events(
    requests: Sequence[InferenceRequest],
    process_name: str = "repro-server",
) -> List[dict]:
    """Build Trace Event Format dicts (phase 'X' complete events).

    Requests with a recorded timeline get slices at their true
    timestamps; requests with only the duration ledger fall back to the
    historical back-to-back layout from arrival.
    """
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": process_name},
        }
    ]
    for request in requests:
        if request.completion_time is None:
            continue
        tid = request.request_id
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"request {tid} ({request.image})"},
            }
        )
        args = {"batch_size": request.batch_size, "gpu": request.gpu_index}
        phase = getattr(request, "workload_phase", None)
        if phase is not None:
            args["phase"] = phase
        if request.timeline:
            for span, start, end in sorted(request.timeline, key=lambda e: e[1]):
                events.append(
                    {
                        "name": span,
                        "cat": _CATEGORY,
                        "ph": "X",
                        "pid": 0,
                        "tid": tid,
                        "ts": start * 1e6,
                        "dur": (end - start) * 1e6,
                        "args": args,
                    }
                )
            continue
        cursor = request.arrival_time
        ordered = [span for span in ALL_SPANS if span in request.spans]
        ordered += sorted(set(request.spans) - set(ALL_SPANS))
        for span in ordered:
            duration = request.spans[span]
            events.append(
                {
                    "name": span,
                    "cat": _CATEGORY,
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": cursor * 1e6,  # microseconds
                    "dur": duration * 1e6,
                    "args": args,
                }
            )
            cursor += duration
    return events


def write_chrome_trace(
    path: str,
    requests: Sequence[InferenceRequest],
    process_name: str = "repro-server",
) -> int:
    """Write a chrome://tracing JSON file; returns the event count."""
    events = requests_to_trace_events(requests, process_name)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return len(events)


# -- timestamped (device-centric) export ------------------------------------


def _device_track(span: str, gpu_index: Optional[int]) -> Optional[str]:
    """Device track of a span, or ``None`` for request-side spans.

    Compute and transfer spans occupy a device and get a shared track;
    queue-kind spans (and host-side frontend/postprocess/broker
    book-keeping) stay on the request's own row, where their overlap
    with *other* requests' compute is the interesting signal.
    """
    kind = span_kind(span)
    gpu = 0 if gpu_index is None else gpu_index
    if kind == KIND_TRANSFER:
        return f"gpu{gpu} pcie"
    if kind == KIND_COMPUTE and span in ("inference", "identify"):
        return f"gpu{gpu} {span}"
    if span == "preprocess":
        return "preprocess"
    return None


def timeline_trace_events(
    requests: Sequence[InferenceRequest],
    monitor=None,
    process_name: str = "repro-server",
) -> List[dict]:
    """Device-centric trace events from timestamped request timelines.

    Identical device intervals shared by several requests (a dynamic
    batch) collapse into one slice carrying the member request ids, and
    each member's own track is linked to it with a flow arrow — the
    batch-grouping view of the paper's Sec. 2.1 analysis.  Requests
    without a timeline (never armed by a tracer) are skipped.
    """
    events: List[dict] = []
    track_tids: Dict[str, int] = {}

    def process_meta(pid: int, name: str) -> None:
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}
        )
        events.append(
            {"name": "process_sort_index", "ph": "M", "pid": pid,
             "args": {"sort_index": pid}}
        )

    def device_tid(track: str) -> int:
        tid = track_tids.get(track)
        if tid is None:
            tid = len(track_tids)
            track_tids[track] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": PID_DEVICES,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tid

    process_meta(PID_DEVICES, f"{process_name} devices")
    process_meta(PID_REQUESTS, f"{process_name} requests")

    traced = [r for r in requests if r.timeline]
    # (track, span, start, end) -> member request ids; identical device
    # intervals are one physical occupancy shared by a batch.
    device_slices: Dict[Tuple[str, str, float, float], List[int]] = {}

    for request in traced:
        rid = request.request_id
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID_REQUESTS,
                "tid": rid,
                "args": {"name": f"request {rid} ({request.image})"},
            }
        )
        span_args = {
            "kind": None,
            "batch_size": request.batch_size,
            "gpu": request.gpu_index,
        }
        phase = getattr(request, "workload_phase", None)
        if phase is not None:
            span_args["phase"] = phase
        for span, start, end in sorted(request.timeline, key=lambda e: e[1]):
            events.append(
                {
                    "name": span,
                    "cat": _CATEGORY,
                    "ph": "X",
                    "pid": PID_REQUESTS,
                    "tid": rid,
                    "ts": start * 1e6,
                    "dur": (end - start) * 1e6,
                    "args": {**span_args, "kind": span_kind(span)},
                }
            )
            track = _device_track(span, request.gpu_index)
            if track is not None:
                device_slices.setdefault((track, span, start, end), []).append(rid)

    flow_id = 0
    for (track, span, start, end), members in sorted(device_slices.items()):
        tid = device_tid(track)
        events.append(
            {
                "name": span,
                "cat": _CATEGORY,
                "ph": "X",
                "pid": PID_DEVICES,
                "tid": tid,
                "ts": start * 1e6,
                "dur": (end - start) * 1e6,
                "args": {"batch_size": len(members), "requests": members},
            }
        )
        for rid in members:
            flow_id += 1
            events.append(
                {
                    "name": span,
                    "cat": _FLOW_CATEGORY,
                    "ph": "s",
                    "id": flow_id,
                    "pid": PID_REQUESTS,
                    "tid": rid,
                    "ts": start * 1e6,
                }
            )
            events.append(
                {
                    "name": span,
                    "cat": _FLOW_CATEGORY,
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "pid": PID_DEVICES,
                    "tid": tid,
                    "ts": start * 1e6,
                }
            )

    if monitor is not None:
        process_meta(PID_COUNTERS, f"{process_name} counters")
        for name in monitor.series_names:
            series = monitor.series(name)
            for time, value in zip(series.times, series.values):
                events.append(
                    {
                        "name": name,
                        "cat": "counter",
                        "ph": "C",
                        "pid": PID_COUNTERS,
                        "ts": time * 1e6,
                        "args": {"value": value},
                    }
                )

    # Stable timestamp order (metadata events carry no ts and sort first).
    events.sort(key=lambda e: (e.get("ts", -1.0), e.get("ph") != "X"))
    return events


def write_perfetto_trace(
    path: str,
    requests: Sequence[InferenceRequest],
    monitor=None,
    process_name: str = "repro-server",
) -> int:
    """Write a Perfetto-loadable timeline trace; returns the event count."""
    events = timeline_trace_events(requests, monitor=monitor, process_name=process_name)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return len(events)


class TraceCollector:
    """Optional hook collecting completed requests for trace export.

    Attach as (or inside) a server's ``on_complete`` callback::

        trace = TraceCollector(limit=200)
        server = InferenceServer(..., on_complete=trace)
        ...
        trace.write("run.trace.json")

    ``sample_every=N`` keeps every Nth completion (for long runs where a
    representative sample suffices); requests beyond ``limit`` are
    counted in :attr:`dropped` and reported with a warning at write time
    rather than silently truncating the trace.
    """

    def __init__(self, limit: Optional[int] = 1000, sample_every: int = 1) -> None:
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1 or None")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.limit = limit
        self.sample_every = sample_every
        self.requests: List[InferenceRequest] = []
        self.dropped = 0
        self.sampled_out = 0
        self._offered = 0

    def __call__(self, request: InferenceRequest) -> None:
        index = self._offered
        self._offered += 1
        if index % self.sample_every != 0:
            self.sampled_out += 1
            return
        if self.limit is None or len(self.requests) < self.limit:
            self.requests.append(request)
        else:
            self.dropped += 1

    def warn_if_dropped(self) -> None:
        """Emit a UserWarning when the limit truncated the trace."""
        if self.dropped:
            warnings.warn(
                f"trace limit {self.limit} reached: {self.dropped} request(s) "
                "dropped from the trace; raise limit or use sample_every",
                stacklevel=2,
            )

    def write(self, path: str, process_name: str = "repro-server") -> int:
        self.warn_if_dropped()
        return write_chrome_trace(path, self.requests, process_name)
