"""Chrome-trace export of request timelines.

Converts completed requests' span ledgers into the Trace Event Format
consumed by ``chrome://tracing`` / Perfetto, so a simulated serving run
can be inspected on a real timeline UI: one row per request, one slice
per span, microsecond timestamps.

Spans are recorded as durations without absolute start times, so slices
are laid out back-to-back from each request's arrival in the canonical
stage order — faithful for the sequential stages of this pipeline.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from ..core.request import ALL_SPANS, InferenceRequest

__all__ = ["TraceCollector", "requests_to_trace_events", "write_chrome_trace"]

#: Spans not in ALL_SPANS (e.g. "broker", "identify") are appended after
#: the canonical ones in alphabetical order.
_CATEGORY = "serving"


def requests_to_trace_events(
    requests: Sequence[InferenceRequest],
    process_name: str = "repro-server",
) -> List[dict]:
    """Build Trace Event Format dicts (phase 'X' complete events)."""
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": process_name},
        }
    ]
    for request in requests:
        if request.completion_time is None:
            continue
        tid = request.request_id
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"request {tid} ({request.image})"},
            }
        )
        cursor = request.arrival_time
        ordered = [span for span in ALL_SPANS if span in request.spans]
        ordered += sorted(set(request.spans) - set(ALL_SPANS))
        for span in ordered:
            duration = request.spans[span]
            events.append(
                {
                    "name": span,
                    "cat": _CATEGORY,
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": cursor * 1e6,  # microseconds
                    "dur": duration * 1e6,
                    "args": {
                        "batch_size": request.batch_size,
                        "gpu": request.gpu_index,
                    },
                }
            )
            cursor += duration
    return events


def write_chrome_trace(
    path: str,
    requests: Sequence[InferenceRequest],
    process_name: str = "repro-server",
) -> int:
    """Write a chrome://tracing JSON file; returns the event count."""
    events = requests_to_trace_events(requests, process_name)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return len(events)


class TraceCollector:
    """Optional hook collecting completed requests for trace export.

    Attach as (or inside) a server's ``on_complete`` callback::

        trace = TraceCollector(limit=200)
        server = InferenceServer(..., on_complete=trace)
        ...
        trace.write("run.trace.json")
    """

    def __init__(self, limit: Optional[int] = 1000) -> None:
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1 or None")
        self.limit = limit
        self.requests: List[InferenceRequest] = []
        self.dropped = 0

    def __call__(self, request: InferenceRequest) -> None:
        if self.limit is None or len(self.requests) < self.limit:
            self.requests.append(request)
        else:
            self.dropped += 1

    def write(self, path: str, process_name: str = "repro-server") -> int:
        return write_chrome_trace(path, self.requests, process_name)
