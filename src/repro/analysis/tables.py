"""Figure-shaped table rendering.

Each benchmark regenerates one of the paper's figures as rows of text;
these helpers keep the formatting consistent and readable in terminal
output and in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_rate", "format_ms", "format_pct"]


def format_rate(value: float) -> str:
    """Images (or frames) per second."""
    return f"{value:,.0f}"


def format_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f} ms"


def format_pct(fraction: float) -> str:
    return f"{fraction * 100:.1f}%"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]], title: str = "") -> str:
    """Render an aligned text table (monospace)."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} does not match headers {headers!r}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)
