"""``repro top``: terminal rendering of the metrics time series.

A deliberately dependency-free dashboard: the CLI polls a live node's
``/metrics/history`` endpoint (or loads a cluster run's exported JSONL)
into a :class:`~repro.telemetry.timeseries.TimeSeriesStore` and renders
it with the pure functions here — Unicode sparklines per series plus a
header of admission counters and SLO burn.  Keeping the rendering pure
(store in, string out) is what makes the dashboard testable and lets
the CI smoke job assert on a ``--once --plain`` frame.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..telemetry.timeseries import SeriesBuffer, TimeSeriesStore

__all__ = ["sparkline", "select_series", "render_top"]

_BLOCKS = " ▁▂▃▄▅▆▇█"

#: Default display set: recording-rule and health series, by suffix or
#: exact name.  Raw per-label gauge families stay out of the default
#: view (they can be wide); ``series=`` overrides.
_DEFAULT_SUFFIXES = (":rate", ":p50", ":p95", ":p99")
_DEFAULT_NAMES = (
    "repro_slo_burn_rate",
    "repro_batch_queue_depth",
    "repro_batch_occupancy",
    "repro_metrics_dropped_series_total",
)
_DEFAULT_PREFIXES = ("alert:",)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Block-character sparkline of the last ``width`` values.

    Scaled to the rendered window's own min/max (a flat series renders
    as a low bar, not blank); ASCII-safe input is not attempted —
    callers wanting plain output still get deterministic characters.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    window = list(values)[-width:]
    if not window:
        return ""
    low = min(window)
    high = max(window)
    span = high - low
    out = []
    for value in window:
        if span <= 0:
            index = 1 if high > 0 else 0
        else:
            index = 1 + int((value - low) / span * (len(_BLOCKS) - 2))
        out.append(_BLOCKS[min(index, len(_BLOCKS) - 1)])
    return "".join(out)


def _wanted(name: str, patterns: Optional[Sequence[str]]) -> bool:
    if patterns is not None:
        return any(pattern in name for pattern in patterns)
    if name in _DEFAULT_NAMES:
        return True
    if any(name.startswith(prefix) for prefix in _DEFAULT_PREFIXES):
        return True
    return any(name.endswith(suffix) for suffix in _DEFAULT_SUFFIXES)


def select_series(
    store: TimeSeriesStore, patterns: Optional[Sequence[str]] = None
) -> List[SeriesBuffer]:
    """The buffers to display, name-sorted.

    ``patterns`` filters by substring match on the series name; without
    it the default view keeps rates, quantiles, queue depth, SLO burn,
    and alert state.
    """
    return [
        buffer for buffer in store.all_series() if _wanted(buffer.name, patterns)
    ]


def _label_text(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:,.1f}"
    return f"{value:.4g}"


def render_top(
    store: TimeSeriesStore,
    *,
    stats: Optional[Mapping[str, Any]] = None,
    title: str = "repro top",
    width: int = 100,
    patterns: Optional[Sequence[str]] = None,
) -> str:
    """One dashboard frame: header, then one sparkline row per series.

    Pure function of its inputs — the CLI redraws it on a poll cadence;
    tests assert on single frames.
    """
    lines: List[str] = []
    header = title
    if stats:
        bits = []
        for key in ("admitted", "completed", "in_flight", "rejected"):
            if key in stats:
                bits.append(f"{key}={stats[key]}")
        if "accepting" in stats:
            bits.append("accepting" if stats["accepting"] else "DRAINING")
        slo = stats.get("slo")
        if isinstance(slo, dict):
            for window in slo.get("windows", []):
                bits.append(
                    f"burn[{window.get('window_seconds', '?')}s]="
                    f"{window.get('burn_rate', 0.0):.2f}"
                )
        scrape = stats.get("scrape")
        if isinstance(scrape, dict) and scrape.get("alerts_firing"):
            bits.append("ALERTS: " + ",".join(scrape["alerts_firing"]))
        if bits:
            header += "  |  " + "  ".join(bits)
    lines.append(header[:width])
    lines.append("-" * min(width, len(header) + 2))

    buffers = select_series(store, patterns)
    if not buffers:
        lines.append("(no series recorded yet)")
        return "\n".join(lines) + "\n"
    name_width = min(
        48, max(len(b.name + _label_text(b.labels)) for b in buffers)
    )
    spark_width = max(8, width - name_width - 16)
    for buffer in buffers:
        label = (buffer.name + _label_text(buffer.labels))[:name_width]
        last = buffer.last()
        value = _format_value(last[1]) if last is not None else "-"
        lines.append(
            f"{label:<{name_width}} {value:>12} "
            f"{sparkline(buffer.values, spark_width)}"
        )
    return "\n".join(lines) + "\n"
