"""Bench-history comparison: fresh bench JSON vs a committed baseline.

CI runs the bench harness every build (``repro bench --smoke --out
BENCH_parallel.json`` / ``--cluster``) and compares the fresh numbers
against baselines committed under ``benchmarks/baselines/``.  A
throughput figure falling more than ``tolerance`` (default 20%) below
its baseline fails the build; improvements and wall-clock noise inside
the band pass.

Only *throughput-shaped* figures are compared (events/sec, requests/sec,
simulated img/s): they are the regression signal the paper's harness
cares about, and the tolerance absorbs runner-to-runner wall-clock
variance.  Figures are restricted to probes stable enough to gate on —
best-of-N micro-probes and multi-second sweeps; sub-second single-shot
wall clocks jitter far beyond any useful threshold and are excluded.
Deterministic fingerprint figures (simulated throughput) should
essentially never move — when they do, the same threshold catches what
is then a behavioural regression, not noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["BenchComparison", "compare_bench", "compare_bench_files"]


def _dig(data: Dict, path: str) -> Optional[float]:
    node = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def _ratio(data: Dict, numerator: str, denominator: str) -> Optional[float]:
    top = _dig(data, numerator)
    bottom = _dig(data, denominator)
    if top is None or bottom is None or bottom <= 0:
        return None
    return top / bottom


#: (figure label, extractor) pairs per bench schema; an extractor
#: returning None (field absent in either file) skips the figure.
_FIGURES: Dict[str, List[Tuple[str, Callable[[Dict], Optional[float]]]]] = {
    "parallel": [
        ("engine timeout events/s",
         lambda d: _dig(d, "engine.timeout_events_per_sec")),
        ("engine store ops/s",
         lambda d: _dig(d, "engine.store_ops_per_sec")),
        ("engine store drain/s",
         lambda d: _dig(d, "engine.store_drain_per_sec")),
        # Per-scheduler probes (bench schema v2+; None-safe on v1 files).
        ("heap depth-1 events/s",
         lambda d: _dig(d, "schedulers.heap.timeout_events_per_sec")),
        ("heap depth-10k events/s",
         lambda d: _dig(d, "schedulers.heap.concurrent_events_per_sec")),
        ("calendar depth-1 events/s",
         lambda d: _dig(d, "schedulers.calendar.timeout_events_per_sec")),
        ("calendar depth-10k events/s",
         lambda d: _dig(d, "schedulers.calendar.concurrent_events_per_sec")),
    ],
    "cluster": [
        ("scaling sim throughput (img/s)",
         lambda d: _dig(d, "scaling.fingerprint.throughput")),
        ("scaling requests/s (serial wall)",
         lambda d: _ratio(d, "scaling.requests",
                          "scaling.serial_wall_seconds")),
        ("day sim throughput (img/s)",
         lambda d: _dig(d, "day.fingerprint.throughput")),
    ],
}


def _schema_of(data: Dict) -> str:
    return "cluster" if "scaling" in data or "day" in data else "parallel"


@dataclass(frozen=True)
class BenchComparison:
    """One throughput figure, fresh vs baseline."""

    figure: str
    baseline: float
    fresh: float
    tolerance: float

    @property
    def change(self) -> float:
        """Relative change vs baseline (negative = slower)."""
        return (self.fresh - self.baseline) / self.baseline

    @property
    def regressed(self) -> bool:
        return self.change < -self.tolerance

    def row(self) -> List[str]:
        return [
            self.figure,
            f"{self.baseline:,.1f}",
            f"{self.fresh:,.1f}",
            f"{self.change:+.1%}",
            "REGRESSED" if self.regressed else "ok",
        ]


def compare_bench(
    fresh: Dict, baseline: Dict, tolerance: float = 0.20
) -> List[BenchComparison]:
    """Compare two bench result dicts; figures missing from either side
    are skipped (schemas are allowed to grow)."""
    if not 0 < tolerance < 1:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    schema = _schema_of(baseline)
    if _schema_of(fresh) != schema:
        raise ValueError(
            "bench schemas differ: fresh looks like "
            f"{_schema_of(fresh)!r}, baseline like {schema!r}"
        )
    out: List[BenchComparison] = []
    for figure, extract in _FIGURES[schema]:
        base_value = extract(baseline)
        fresh_value = extract(fresh)
        if base_value is None or fresh_value is None or base_value <= 0:
            continue
        out.append(BenchComparison(
            figure=figure, baseline=base_value, fresh=fresh_value,
            tolerance=tolerance,
        ))
    if not out:
        raise ValueError("no comparable throughput figures found")
    return out


def compare_bench_files(
    fresh_path: str, baseline_path: str, tolerance: float = 0.20
) -> List[BenchComparison]:
    """File-path convenience wrapper around :func:`compare_bench`."""
    with open(fresh_path, "r", encoding="utf-8") as handle:
        fresh = json.load(handle)
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    return compare_bench(fresh, baseline, tolerance=tolerance)
