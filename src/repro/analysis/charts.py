"""Terminal charts: dependency-free bar charts and sparklines.

The benchmarks regenerate the paper's figures as data; these helpers
make the shapes visible directly in a terminal — horizontal bars for
figure-style comparisons, stacked bars for latency breakdowns, and
sparklines for monitor time series.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["bar_chart", "stacked_bar_chart", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_BAR = "█"
_STACK_GLYPHS = "█▓▒░▫▪·"


def bar_chart(
    values: Mapping[str, float],
    width: int = 48,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bar chart of label -> value."""
    if not values:
        raise ValueError("no values to chart")
    if width < 4:
        raise ValueError("width must be >= 4")
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        bar = _BAR * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)}  {bar} {value:,.4g}{unit}")
    return "\n".join(lines)


def stacked_bar_chart(
    rows: Mapping[str, Mapping[str, float]],
    width: int = 48,
    title: str = "",
) -> str:
    """Stacked horizontal bars (e.g. latency breakdowns per config).

    All rows share one scale; a legend maps glyphs to segment names.
    """
    if not rows:
        raise ValueError("no rows to chart")
    segment_names: list = []
    for segments in rows.values():
        for name in segments:
            if name not in segment_names:
                segment_names.append(name)
    if len(segment_names) > len(_STACK_GLYPHS):
        raise ValueError(f"too many segments (max {len(_STACK_GLYPHS)})")
    glyphs: Dict[str, str] = {
        name: _STACK_GLYPHS[i] for i, name in enumerate(segment_names)
    }
    peak = max(sum(segments.values()) for segments in rows.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in rows)

    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(f"{glyph}={name}" for name, glyph in glyphs.items())
    lines.append(legend)
    for label, segments in rows.items():
        bar = ""
        for name in segment_names:
            value = segments.get(name, 0.0)
            cells = round(width * value / peak)
            bar += glyphs[name] * cells
        total = sum(segments.values())
        lines.append(f"{label.ljust(label_width)}  {bar} {total:,.4g}")
    return "\n".join(lines)


def sparkline(
    values: Sequence[float],
    bounds: Optional[Tuple[float, float]] = None,
) -> str:
    """One-line unicode sparkline of a series."""
    if not values:
        raise ValueError("no values for sparkline")
    lo, hi = bounds if bounds is not None else (min(values), max(values))
    if hi <= lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for value in values:
        index = int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[max(0, min(len(_SPARK_LEVELS) - 1, index))])
    return "".join(out)
