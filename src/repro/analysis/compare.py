"""Paper-claim vs measured-value comparison records.

Every benchmark asserts its figure's *shape* against the paper's
reported numbers through :class:`PaperClaim` records: a claim has the
paper's value, the measured value, and a tolerance expressing that we
reproduce trends, not testbed-exact numbers.  The collected claims are
what ``EXPERIMENTS.md`` tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["PaperClaim", "ClaimSet"]


@dataclass(frozen=True)
class PaperClaim:
    """One quantified claim from the paper, checked against the sim."""

    figure: str  # e.g. "Fig. 6"
    description: str
    paper_value: float
    measured_value: float
    unit: str = ""
    #: Relative tolerance for |measured - paper| / |paper|; ``None``
    #: marks a directional claim checked elsewhere (no numeric check).
    rel_tolerance: Optional[float] = 0.5

    @property
    def relative_error(self) -> float:
        if self.paper_value == 0:
            return abs(self.measured_value)
        return abs(self.measured_value - self.paper_value) / abs(self.paper_value)

    @property
    def within_tolerance(self) -> bool:
        if self.rel_tolerance is None:
            return True
        return self.relative_error <= self.rel_tolerance

    def render(self) -> str:
        status = "ok" if self.within_tolerance else "OFF"
        return (
            f"[{status}] {self.figure}: {self.description}: "
            f"paper {self.paper_value:g}{self.unit}, "
            f"measured {self.measured_value:g}{self.unit} "
            f"(err {self.relative_error * 100:.0f}%)"
        )


class ClaimSet:
    """Accumulates claims for one benchmark and renders a report."""

    def __init__(self, figure: str) -> None:
        self.figure = figure
        self.claims: List[PaperClaim] = []

    def check(
        self,
        description: str,
        paper_value: float,
        measured_value: float,
        unit: str = "",
        rel_tolerance: Optional[float] = 0.5,
    ) -> PaperClaim:
        claim = PaperClaim(
            figure=self.figure,
            description=description,
            paper_value=paper_value,
            measured_value=measured_value,
            unit=unit,
            rel_tolerance=rel_tolerance,
        )
        self.claims.append(claim)
        return claim

    @property
    def all_within_tolerance(self) -> bool:
        return all(claim.within_tolerance for claim in self.claims)

    def render(self) -> str:
        return "\n".join(claim.render() for claim in self.claims)
