"""Result export: CSV / JSON serialization of run measurements.

Downstream users want the regenerated figures as data, not just
terminal tables.  These helpers flatten :class:`RunMetrics` /
:class:`RunResult` objects into plain dictionaries and write
spreadsheets-friendly CSV or structured JSON.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Mapping, Sequence

from ..core.metrics import RunMetrics

__all__ = [
    "metrics_to_dict",
    "result_to_dict",
    "run_result_to_dict",
    "cluster_result_to_dict",
    "fleet_result_to_dict",
    "tuning_result_to_dict",
    "rows_to_csv",
    "rows_to_json",
    "write_csv",
    "write_json",
]


def metrics_to_dict(metrics: RunMetrics) -> Dict[str, Any]:
    """Flatten a RunMetrics into JSON/CSV-safe scalars."""
    out: Dict[str, Any] = {
        "window_seconds": metrics.window_seconds,
        "completed": metrics.completed,
        "throughput": metrics.throughput,
        "latency_mean": metrics.latency.mean,
        "latency_p50": metrics.latency.p50,
        "latency_p90": metrics.latency.p90,
        "latency_p99": metrics.latency.p99,
        "latency_max": metrics.latency.maximum,
        "mean_batch_size": metrics.mean_batch_size,
        "eviction_count": metrics.eviction_count,
        "timeout_count": metrics.timeout_count,
        "retry_count": metrics.retry_count,
        "shed_count": metrics.shed_count,
        "success_fraction": metrics.success_fraction,
    }
    for span, value in sorted(metrics.span_means.items()):
        out[f"span_{span}"] = value
    # Cache columns only appear on cached runs: window-gated hit counts
    # plus the run-global tier counters carried in extras.
    for tier, count in sorted(metrics.cache_hits.items()):
        out[f"cache_hits_{tier}"] = count
    for key, value in sorted(metrics.extras.items()):
        out[key] = value
    return out


def run_result_to_dict(result) -> Dict[str, Any]:
    """Flatten a :class:`~repro.serving.runner.RunResult`."""
    out = metrics_to_dict(result.metrics)
    out.update(
        {
            "cpu_joules_per_image": result.cpu_joules_per_image,
            "gpu_joules_per_image": result.gpu_joules_per_image,
            "joules_per_image": result.joules_per_image,
            "cpu_utilization": result.cpu_utilization,
            "gpu_utilization": result.gpu_utilization,
        }
    )
    if getattr(result, "fault_count", 0):
        out["fault_count"] = result.fault_count
    return out


def fleet_result_to_dict(result) -> Dict[str, Any]:
    """Flatten a :class:`~repro.serving.fleet.FleetResult`."""
    out = metrics_to_dict(result.metrics)
    out.update(
        {
            "node_count": result.node_count,
            "offered_rate": result.offered_rate,
            "goodput_fraction": result.goodput_fraction,
            "balance_ratio": result.balance_ratio,
            "peak_backlog": result.peak_backlog,
            "fault_count": result.fault_count,
            "breaker_opens": result.breaker_opens,
        }
    )
    return out


def cluster_result_to_dict(result) -> Dict[str, Any]:
    """Flatten a :class:`~repro.cluster.ClusterResult`."""
    out = metrics_to_dict(result.metrics)
    out.update(
        {
            "cells": result.cluster.cells,
            "nodes_per_cell": result.cluster.nodes_per_cell,
            "node_count": result.node_count,
            "shard_count": result.shard_count,
            "routing": result.cluster.routing,
            "execution_mode": result.mode,
            "issued": result.issued,
            "cluster_timeouts": result.timeouts,
            "cluster_retries": result.retries,
            "cluster_shed": result.shed,
            "fluid_served": result.fluid_served,
            "cells_touched": result.cells_touched,
            "epochs": result.epochs,
            "epoch_seconds": result.epoch_seconds,
            "wall_seconds": result.wall_seconds,
            "busy_seconds": result.busy_seconds,
            "workers": result.workers,
            "parallel_efficiency": result.parallel_efficiency,
        }
    )
    if result.slo is not None:
        out["slo_met"] = result.slo.met
        out["slo_compliance"] = result.slo.compliance
    return out


def tuning_result_to_dict(result) -> Dict[str, Any]:
    """Flatten a :class:`~repro.core.tuner.TuningResult`."""
    return {
        "baseline_throughput": result.baseline.throughput,
        "best_throughput": result.best.throughput,
        "speedup": result.speedup,
        "improvement": result.improvement,
        "trace_points": len(result.trace),
        "best_preprocess_device": result.best.server.preprocess_device,
        "best_max_batch": result.best.server.max_batch_size,
        "best_instances": result.best.server.inference_instances,
        "best_concurrency": result.best.concurrency,
    }


def result_to_dict(result) -> Dict[str, Any]:
    """Flatten any result object into JSON/CSV-safe scalars.

    Dispatches on shape rather than type so the result dataclasses can
    delegate here without circular imports: a fleet result carries
    ``dispatched_per_node``, a tuning result carries ``baseline`` and
    ``best``, and anything else with ``metrics`` is a single-node run.
    """
    if hasattr(result, "dispatched_per_node"):
        return fleet_result_to_dict(result)
    if hasattr(result, "shard_count") and hasattr(result, "cluster"):
        return cluster_result_to_dict(result)
    if hasattr(result, "baseline") and hasattr(result, "best"):
        return tuning_result_to_dict(result)
    return run_result_to_dict(result)


def _field_names(rows: Sequence[Mapping[str, Any]]) -> List[str]:
    names: List[str] = []
    for row in rows:
        for key in row:
            if key not in names:
                names.append(key)
    return names


def rows_to_csv(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render dict-rows as a CSV string (union of keys as the header)."""
    if not rows:
        raise ValueError("no rows to export")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_field_names(rows), restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(dict(row))
    return buffer.getvalue()


def rows_to_json(rows: Sequence[Mapping[str, Any]], indent: int = 2) -> str:
    """Render dict-rows as a JSON array string."""
    if not rows:
        raise ValueError("no rows to export")
    return json.dumps([dict(row) for row in rows], indent=indent, sort_keys=True)


def write_csv(path: str, rows: Sequence[Mapping[str, Any]]) -> None:
    with open(path, "w", newline="") as handle:
        handle.write(rows_to_csv(rows))


def write_json(path: str, rows: Sequence[Mapping[str, Any]]) -> None:
    with open(path, "w") as handle:
        handle.write(rows_to_json(rows))
