"""DNN model zoo, runtime envelopes, and the roofline latency model."""

from .detection import FACE_CROP_BYTES, FaceCrop, FacesPerFrame, FixedFaces, PoissonFaces
from .dnn import InferenceCost, batch_efficiency, inference_cost, inference_latency, peak_throughput
from .runtimes import ONNXRUNTIME, PYTORCH, RUNTIMES, TENSORRT, RuntimeSpec, get_runtime
from .zoo import FIG4_MODELS, MODEL_ZOO, ModelSpec, get_model, models_by_task

__all__ = [
    "FACE_CROP_BYTES",
    "FIG4_MODELS",
    "FaceCrop",
    "FacesPerFrame",
    "FixedFaces",
    "InferenceCost",
    "MODEL_ZOO",
    "ModelSpec",
    "ONNXRUNTIME",
    "PYTORCH",
    "PoissonFaces",
    "RUNTIMES",
    "RuntimeSpec",
    "TENSORRT",
    "batch_efficiency",
    "get_model",
    "get_runtime",
    "inference_cost",
    "inference_latency",
    "models_by_task",
    "peak_throughput",
]
