"""Vision-DNN zoo: the HuggingFace models the paper benchmarks.

The paper profiles "a large number of computer vision DNNs from
HuggingFace" spanning image classification, segmentation, object
detection, and depth estimation (Sec. 4.1 / Fig. 4), plus Faster R-CNN
and FaceNet for the multi-DNN pipeline (Sec. 4.7).

For the simulator a model is a *cost descriptor*: FLOPs per image,
parameter count, activation footprint, kernel-chain length, and input
resolution.  FLOPs/params are the published numbers for each
architecture; activation bytes and layer counts are standard estimates
used only for the memory-bound floor and launch-overhead terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["ModelSpec", "MODEL_ZOO", "get_model", "models_by_task", "FIG4_MODELS"]


@dataclass(frozen=True)
class ModelSpec:
    """Cost descriptor for one DNN."""

    name: str
    task: str  # classification | segmentation | detection | depth | embedding
    gflops: float  # forward FLOPs for one image at input_size
    params_millions: float
    input_size: int  # square input edge expected by the DNN
    activation_mbytes: float  # per-image intermediate activations (fp16)
    layers: int  # kernel-chain length (launch-overhead proxy)
    hf_id: str = ""  # HuggingFace model id the numbers come from
    #: Override of the GPU batch-efficiency half-batch.  Models with
    #: large spatial inputs (detectors, segmenters) saturate the GPU at
    #: batch 1 and gain little from batching; classification models at
    #: 224x224 need large batches.  ``None`` uses the platform default.
    efficiency_half_batch: float = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.gflops <= 0 or self.params_millions <= 0:
            raise ValueError(f"invalid cost numbers for {self.name}")
        if self.input_size <= 0 or self.layers <= 0:
            raise ValueError(f"invalid structure for {self.name}")

    @property
    def flops(self) -> float:
        return self.gflops * 1e9

    @property
    def param_bytes(self) -> float:
        """Weight footprint at fp16."""
        return self.params_millions * 1e6 * 2

    @property
    def activation_bytes(self) -> float:
        return self.activation_mbytes * 1e6

    @property
    def input_pixels(self) -> int:
        return self.input_size * self.input_size


def _spec(*args, **kwargs) -> ModelSpec:
    return ModelSpec(*args, **kwargs)


#: Every model the reproduction knows about, keyed by short name.
MODEL_ZOO: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in [
        # -- image classification ------------------------------------------
        _spec("mobilenet-v2", "classification", 0.32, 3.5, 224, 4.0, 66,
              hf_id="google/mobilenet_v2_1.0_224"),
        _spec("efficientnet-b0", "classification", 0.39, 5.3, 224, 6.0, 82,
              hf_id="google/efficientnet-b0"),
        _spec("tinyvit-5m", "classification", 1.30, 5.4, 224, 8.0, 120,
              hf_id="timm/tiny_vit_5m_224.dist_in22k_ft_in1k"),
        _spec("resnet-18", "classification", 1.82, 11.7, 224, 5.0, 52,
              hf_id="microsoft/resnet-18"),
        _spec("resnet-50", "classification", 4.09, 25.6, 224, 12.0, 107,
              hf_id="microsoft/resnet-50"),
        _spec("deit-small", "classification", 4.61, 22.1, 224, 10.0, 100,
              hf_id="facebook/deit-small-patch16-224"),
        _spec("swin-tiny", "classification", 4.51, 28.3, 224, 14.0, 144,
              hf_id="microsoft/swin-tiny-patch4-window7-224"),
        _spec("convnext-tiny", "classification", 4.47, 28.6, 224, 13.0, 118,
              hf_id="facebook/convnext-tiny-224"),
        _spec("resnet-101", "classification", 7.83, 44.5, 224, 18.0, 209,
              hf_id="microsoft/resnet-101"),
        _spec("swin-base", "classification", 15.4, 87.8, 224, 30.0, 202,
              hf_id="microsoft/swin-base-patch4-window7-224"),
        _spec("convnext-base", "classification", 15.4, 88.6, 224, 28.0, 146,
              hf_id="facebook/convnext-base-224"),
        _spec("vit-base-16", "classification", 17.6, 86.6, 224, 26.0, 150,
              hf_id="google/vit-base-patch16-224"),
        _spec("beit-base", "classification", 17.6, 86.5, 224, 27.0, 152,
              hf_id="microsoft/beit-base-patch16-224"),
        _spec("vit-large-16", "classification", 61.6, 304.3, 224, 63.0, 294,
              hf_id="google/vit-large-patch16-224"),
        _spec("efficientnetv2-s", "classification", 8.4, 21.5, 384, 22.0, 170,
              hf_id="timm/tf_efficientnetv2_s.in21k_ft_in1k"),
        _spec("regnety-16gf", "classification", 15.9, 83.6, 224, 24.0, 130,
              hf_id="facebook/regnet-y-160"),
        _spec("deit-base", "classification", 17.6, 86.6, 224, 26.0, 150,
              hf_id="facebook/deit-base-patch16-224"),
        _spec("mobilevit-small", "classification", 2.0, 5.6, 256, 9.0, 120,
              hf_id="apple/mobilevit-small"),
        _spec("dinov2-base", "classification", 23.4, 86.6, 224, 30.0, 160,
              hf_id="facebook/dinov2-base (linear head)"),
        # -- semantic segmentation ------------------------------------------
        _spec("segformer-b0", "segmentation", 8.4, 3.8, 512, 45.0, 140,
              hf_id="nvidia/segformer-b0-finetuned-ade-512-512",
              efficiency_half_batch=1.5),
        _spec("segformer-b2", "segmentation", 62.4, 27.5, 512, 110.0, 230,
              hf_id="nvidia/segformer-b2-finetuned-ade-512-512",
              efficiency_half_batch=1.5),
        _spec("mask2former-swin-t", "segmentation", 232.0, 47.4, 640, 260.0, 340,
              hf_id="facebook/mask2former-swin-tiny-ade-semantic",
              efficiency_half_batch=0.8),
        # -- object detection -----------------------------------------------
        _spec("yolos-tiny", "detection", 21.0, 6.5, 512, 48.0, 110,
              hf_id="hustvl/yolos-tiny (512 input)", efficiency_half_batch=1.5),
        _spec("detr-resnet-50", "detection", 86.0, 41.3, 800, 160.0, 250,
              hf_id="facebook/detr-resnet-50", efficiency_half_batch=0.8),
        _spec("faster-rcnn-face", "detection", 134.0, 41.8, 800, 210.0, 280,
              hf_id="(torchvision) fasterrcnn_resnet50_fpn, face-detection head",
              efficiency_half_batch=0.8),
        # -- monocular depth estimation -------------------------------------
        _spec("glpn-nyu", "depth", 21.5, 61.2, 480, 75.0, 190,
              hf_id="vinvino02/glpn-nyu", efficiency_half_batch=1.5),
        _spec("dpt-large", "depth", 112.0, 343.0, 384, 180.0, 330,
              hf_id="Intel/dpt-large", efficiency_half_batch=1.2),
        _spec("depth-anything-s", "depth", 28.0, 24.8, 518, 90.0, 200,
              hf_id="LiheYoung/depth-anything-small-hf",
              efficiency_half_batch=1.2),
        # -- face embedding (multi-DNN pipeline stage 2) ---------------------
        _spec("facenet", "embedding", 1.45, 27.9, 160, 6.0, 200,
              hf_id="(facenet-pytorch) InceptionResnetV1 vggface2"),
    ]
}

#: The classification/seg/det/depth sweep plotted in Fig. 4, ordered by FLOPs.
FIG4_MODELS: List[str] = sorted(
    (name for name, spec in MODEL_ZOO.items() if spec.task != "embedding"),
    key=lambda name: MODEL_ZOO[name].gflops,
)


def get_model(name: str) -> ModelSpec:
    """Look up a model by short name, with a helpful error."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_ZOO))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None


def models_by_task(task: str) -> List[ModelSpec]:
    """All zoo models for one task, ordered by FLOPs."""
    specs = [spec for spec in MODEL_ZOO.values() if spec.task == task]
    if not specs:
        raise KeyError(f"no models for task {task!r}")
    return sorted(specs, key=lambda spec: spec.gflops)
