"""Detection-output behaviour models for the multi-DNN pipeline.

For the face-detection -> identification pipeline (paper Sec. 4.7) the
quantity that matters is the *fan-out*: how many faces stage 1 emits per
frame, each becoming one stage-2 request (and one broker message).  The
paper sweeps this from 1 to 25 faces per frame.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["FaceCrop", "FacesPerFrame", "FixedFaces", "PoissonFaces", "FACE_CROP_BYTES"]

#: A detected face crop as shipped through the broker: 160x160 RGB888
#: pixels plus bounding-box/track metadata (paper Sec. 4.7, FaceNet input).
FACE_CROP_BYTES = 160 * 160 * 3 + 256


@dataclass(frozen=True)
class FaceCrop:
    """One detected face: the stage-2 work item / broker message body."""

    frame_id: int
    index: int
    message_bytes: int = FACE_CROP_BYTES


class FacesPerFrame:
    """Distribution of the number of faces detected in one frame."""

    def sample(self, rng: random.Random) -> int:
        raise NotImplementedError

    @property
    def mean(self) -> float:
        raise NotImplementedError


class FixedFaces(FacesPerFrame):
    """Every frame contains exactly ``count`` faces (the paper's sweep)."""

    def __init__(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"face count must be >= 0, got {count}")
        self.count = count

    def sample(self, rng: random.Random) -> int:
        return self.count

    @property
    def mean(self) -> float:
        return float(self.count)

    def __repr__(self) -> str:
        return f"FixedFaces({self.count})"


class PoissonFaces(FacesPerFrame):
    """Poisson-distributed face counts (crowd scenes), optionally capped."""

    def __init__(self, mean: float, cap: int = 100) -> None:
        if mean < 0:
            raise ValueError(f"mean must be >= 0, got {mean}")
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self._mean = mean
        self.cap = cap

    def sample(self, rng: random.Random) -> int:
        # Knuth's algorithm; fine for the small means used here.
        import math

        threshold = math.exp(-self._mean)
        count = 0
        product = rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return min(count, self.cap)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"PoissonFaces(mean={self._mean}, cap={self.cap})"
