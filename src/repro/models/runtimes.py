"""Model-execution runtimes (backends) and their efficiency envelopes.

The paper's software ladder (Sec. 2.3 / Fig. 3) moves from eager PyTorch
through the ONNX runtime under Triton to TensorRT-compiled engines, with
large throughput differences on identical hardware.  We model a runtime
as a multiplier on the GPU's batch-efficiency curve plus extra dispatch
overheads; the multipliers are fitted to the paper's ladder
(PyTorch ~431 img/s -> TrIS+ONNX ~1150 img/s -> TrIS+TensorRT >1600 img/s
for ViT-base end to end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["RuntimeSpec", "RUNTIMES", "get_runtime", "TENSORRT", "ONNXRUNTIME", "PYTORCH"]


@dataclass(frozen=True)
class RuntimeSpec:
    """Execution-efficiency envelope of one backend."""

    name: str
    #: Multiplier on the achievable fraction of peak FLOPs (TensorRT = 1).
    efficiency_multiplier: float
    #: Multiplier on per-kernel launch overhead (graph fusion reduces it).
    launch_multiplier: float
    #: Fixed per-invocation dispatch cost (framework overhead).
    dispatch_overhead_seconds: float

    def __post_init__(self) -> None:
        if not 0 < self.efficiency_multiplier <= 1:
            raise ValueError(f"efficiency multiplier out of (0, 1]: {self.efficiency_multiplier}")
        if self.launch_multiplier < 1:
            raise ValueError(f"launch multiplier must be >= 1: {self.launch_multiplier}")
        if self.dispatch_overhead_seconds < 0:
            raise ValueError("dispatch overhead must be >= 0")


TENSORRT = RuntimeSpec(
    name="tensorrt",
    efficiency_multiplier=1.0,
    launch_multiplier=1.0,
    dispatch_overhead_seconds=0.10e-3,
)

ONNXRUNTIME = RuntimeSpec(
    name="onnxruntime",
    efficiency_multiplier=0.62,
    launch_multiplier=1.6,
    dispatch_overhead_seconds=0.35e-3,
)

PYTORCH = RuntimeSpec(
    name="pytorch",
    efficiency_multiplier=0.50,
    launch_multiplier=3.0,
    dispatch_overhead_seconds=1.20e-3,
)

RUNTIMES: Dict[str, RuntimeSpec] = {
    runtime.name: runtime for runtime in (TENSORRT, ONNXRUNTIME, PYTORCH)
}


def get_runtime(name: str) -> RuntimeSpec:
    """Look up a runtime by name, with a helpful error."""
    try:
        return RUNTIMES[name]
    except KeyError:
        known = ", ".join(sorted(RUNTIMES))
        raise KeyError(f"unknown runtime {name!r}; known runtimes: {known}") from None
