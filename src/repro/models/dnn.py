"""Roofline-style DNN inference latency model.

GPU inference time for a batch is the max of a compute term and a memory
term, plus a kernel-launch chain:

    compute(B) = B * flops / (peak_flops * eff(B))
    memory(B)  = (param_bytes + B * activation_bytes) / (mem_bw * mem_eff)
    launch     = layers * kernel_launch * runtime.launch_multiplier
                 + runtime.dispatch_overhead
    latency(B) = max(compute, memory) + launch

with the batch-efficiency curve

    eff(B) = efficiency_max * runtime.efficiency_multiplier
             * B / (B + efficiency_half_batch)

capturing the well-known underutilization of large GPUs at small batch
sizes (the reason dynamic batching exists, paper Sec. 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.calibration import Calibration
from .runtimes import RuntimeSpec
from .zoo import ModelSpec

__all__ = ["InferenceCost", "batch_efficiency", "inference_latency", "inference_cost", "peak_throughput"]


@dataclass(frozen=True)
class InferenceCost:
    """Latency decomposition of one batched inference call."""

    batch: int
    compute_seconds: float
    memory_seconds: float
    launch_seconds: float

    @property
    def total_seconds(self) -> float:
        return max(self.compute_seconds, self.memory_seconds) + self.launch_seconds

    @property
    def per_image_seconds(self) -> float:
        return self.total_seconds / self.batch

    @property
    def compute_bound(self) -> bool:
        return self.compute_seconds >= self.memory_seconds


def batch_efficiency(
    batch: int,
    runtime: RuntimeSpec,
    calibration: Calibration,
    model: "ModelSpec" = None,
) -> float:
    """Achievable fraction of peak FLOPs at ``batch``.

    Models may override the half-batch of the saturation curve (large
    spatial inputs saturate the GPU at small batches).
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    gpu = calibration.gpu
    half = gpu.efficiency_half_batch
    if model is not None and model.efficiency_half_batch is not None:
        half = model.efficiency_half_batch
    saturation = batch / (batch + half)
    return gpu.efficiency_max * runtime.efficiency_multiplier * saturation


def inference_cost(
    model: ModelSpec,
    runtime: RuntimeSpec,
    batch: int,
    calibration: Calibration,
) -> InferenceCost:
    """Full latency decomposition for one batched inference call."""
    gpu = calibration.gpu
    eff = batch_efficiency(batch, runtime, calibration, model)
    compute = batch * model.flops / (gpu.peak_flops * eff)
    memory = (model.param_bytes + batch * model.activation_bytes) / (
        gpu.memory_bandwidth * gpu.memory_efficiency
    )
    launch = (
        model.layers * gpu.kernel_launch_seconds * runtime.launch_multiplier
        + runtime.dispatch_overhead_seconds
    )
    return InferenceCost(
        batch=batch,
        compute_seconds=compute,
        memory_seconds=memory,
        launch_seconds=launch,
    )


def inference_latency(
    model: ModelSpec,
    runtime: RuntimeSpec,
    batch: int,
    calibration: Calibration,
) -> float:
    """GPU-resident latency of one batched inference call, in seconds."""
    return inference_cost(model, runtime, batch, calibration).total_seconds


def peak_throughput(
    model: ModelSpec,
    runtime: RuntimeSpec,
    max_batch: int,
    calibration: Calibration,
) -> float:
    """Best images/second over batch sizes up to ``max_batch`` (one GPU)."""
    best = 0.0
    batch = 1
    while batch <= max_batch:
        cost = inference_cost(model, runtime, batch, calibration)
        best = max(best, batch / cost.total_seconds)
        batch *= 2
    return best
