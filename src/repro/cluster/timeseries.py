"""Post-hoc cluster time series from completion records.

A cluster run cannot host an in-loop
:class:`~repro.telemetry.scraper.MetricsScraper`: shards *drain* (run
their event queue dry), so a cadence process would keep the loop alive
forever.  Instead the fleet-wide time series are reconstructed after
the fact from the merged :class:`~repro.cluster.records.
CompletionRecord` stream — binning completions into fixed windows and
computing, per window, the exact same recording rules the live scraper
emits (per-cell QPS, windowed latency quantiles, SLO burn rate).

The quantile math goes through per-cell
:class:`~repro.telemetry.registry.Histogram` instances folded with
:meth:`~repro.telemetry.registry.Histogram.merge`, so the cluster-wide
quantile of a window is *identical* to observing every completion in
one global histogram — the property the merge regression test pins.

The resulting :class:`~repro.telemetry.timeseries.TimeSeriesStore` is
what ``repro cluster --timeseries-out`` exports (the golden-day JSONL
artifact in CI) and what ``repro top --cluster`` replays.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.request import OUTCOME_OK
from ..telemetry.registry import Histogram
from ..telemetry.slo import SloConfig
from ..telemetry.timeseries import TimeSeriesStore
from .records import CompletionRecord

__all__ = ["cluster_timeseries"]


def cluster_timeseries(
    per_cell: Iterable[Tuple[int, List[CompletionRecord]]],
    *,
    interval: float = 60.0,
    slo: Optional[SloConfig] = None,
) -> TimeSeriesStore:
    """Build the fleet-wide time-series store from per-cell records.

    Per window of ``interval`` router-clock seconds, the store gains:

    - ``repro_cluster_completions:rate`` — completions/s, one labelled
      series per cell (``{"cell": ...}``) plus the unlabelled global;
    - ``repro_cluster_latency_seconds:p50/p95/p99`` — windowed global
      quantiles from the merge of the per-cell window histograms, and
      per-cell ``:p99``;
    - ``repro_cluster_latency_seconds:count`` — cumulative completions;
    - ``repro_slo_burn_rate`` (``{"window": <interval>}``) — windowed
      bad-fraction over the error budget, when ``slo`` is given.

    Points are stamped at each window's *end*; the store capacity is
    sized to the window count so a full day is never evicted.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    cells = sorted(
        (cell_id, records) for cell_id, records in per_cell
    )
    end = 0.0
    for _cell_id, records in cells:
        for record in records:
            if record.completion_time > end:
                end = record.completion_time
    ticks = max(1, int(math.ceil(end / interval)) if end > 0 else 1)

    # window index -> cell -> (histogram, bad count)
    windows: List[Dict[int, Histogram]] = [dict() for _ in range(ticks)]
    bad: List[int] = [0] * ticks
    for cell_id, records in cells:
        for record in records:
            index = min(int(record.completion_time / interval), ticks - 1)
            histogram = windows[index].get(cell_id)
            if histogram is None:
                histogram = Histogram()
                windows[index][cell_id] = histogram
            histogram.observe(record.latency)
            if slo is not None and (
                record.outcome != OUTCOME_OK
                or record.latency > slo.latency_objective_seconds
            ):
                bad[index] += 1

    store = TimeSeriesStore(capacity=ticks)
    cell_ids = [cell_id for cell_id, _records in cells]
    budget = (1.0 - slo.target) if slo is not None else None
    cumulative = 0
    for index in range(ticks):
        t = (index + 1) * interval
        merged = Histogram()
        for cell_id in cell_ids:
            histogram = windows[index].get(cell_id)
            count = histogram.count if histogram is not None else 0
            store.record(
                "repro_cluster_completions:rate", t, count / interval,
                {"cell": str(cell_id)},
            )
            store.record(
                "repro_cluster_latency_seconds:p99", t,
                histogram.quantile(0.99) if histogram is not None else 0.0,
                {"cell": str(cell_id)},
            )
            if histogram is not None:
                merged.merge(histogram)
        cumulative += merged.count
        store.record("repro_cluster_completions:rate", t, merged.count / interval)
        store.record("repro_cluster_latency_seconds:count", t, cumulative)
        for suffix, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            store.record(
                f"repro_cluster_latency_seconds:{suffix}", t,
                merged.quantile(q) if merged.count else 0.0,
            )
        if slo is not None:
            fraction = bad[index] / merged.count if merged.count else 0.0
            burn = fraction / budget if budget and budget > 0 else 0.0
            store.record(
                "repro_slo_burn_rate", t, burn,
                {"window": _format_window(interval)},
            )
    return store


def _format_window(window_seconds: float) -> str:
    if window_seconds == int(window_seconds):
        return str(int(window_seconds))
    return repr(float(window_seconds))
