"""Cluster coordinator: conservative lockstep epochs over shard loops.

The serial coordinator advances every shard in lockstep windows of
``ClusterConfig.resolved_epoch_seconds()`` — by default the minimum
one-way fabric latency, the classic conservative-lookahead bound: a
routing decision made in epoch ``k`` cannot be delivered before epoch
``k + 1``, so each shard can safely simulate a whole window without
hearing from anyone.  Empty windows are skipped wholesale (the epoch
counter jumps straight to the window holding the next arrival or shard
event), which is what lets a 24h day with sub-millisecond epochs finish
in minutes.

With a feedback-free routing policy (``hash``/``round_robin``) the
routing tier never reads shard state, so each shard's input stream is a
pure function of the workload — and shards can run to completion
independently, one process-pool worker each (``execution="process"``,
reusing :mod:`repro.parallel`).  Both paths feed the same canonical
merge, so their results are bit-identical (pinned by tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.config import ServerConfig
from ..core.metrics import RunMetrics
from ..hardware.calibration import DEFAULT_CALIBRATION, Calibration
from ..parallel import ParallelConfig, run_sweep
from ..telemetry.slo import SloConfig, SloReport, SloTracker
from ..workload import Workload
from .config import ROUTE_LEAST_BACKLOG, EXEC_PROCESS, ClusterConfig
from .records import CompletionRecord, canonical_order, merge_records, slo_feed
from .shards import (
    Arrival,
    ShardPoint,
    ShardRuntime,
    arrival_stream,
    route_cell,
    run_shard_point,
)
from .tracing import TraceSampler, TraceSpanRecord, merge_trace_records

__all__ = ["ClusterResult", "ShardSummary", "run_cluster_experiment"]

_INF = float("inf")


def _epoch_index(t: float, width: float) -> int:
    """Index of the aligned window containing ``t`` (float-safe floor)."""
    k = int(t // width)
    # ``//`` on floats can land one window off in either direction when
    # t sits on (or within an ulp of) a boundary; nudge back onto the
    # grid so k * width <= t < (k + 1) * width.
    while k * width > t:
        k -= 1
    while (k + 1) * width <= t:
        k += 1
    return k


@dataclass(frozen=True)
class ShardSummary:
    """Per-shard accounting (packing-dependent: excluded from equality)."""

    shard_id: int
    cells: int
    cells_touched: int
    delivered: int
    completed: int
    timeouts: int
    retries: int
    shed: int
    fluid_served: int
    #: Shard-local SLO view (``SloReport.as_dict()``), or ``None``.
    slo: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one sharded cluster run."""

    cluster: ClusterConfig
    metrics: RunMetrics
    shard_count: int
    #: Requests issued by the global routing tier.
    issued: int
    completed: int
    timeouts: int
    retries: int
    shed: int
    #: Requests served by the fluid cold-cell model (0 unless enabled).
    fluid_served: int
    #: Cells that received at least one request.
    cells_touched: int
    #: Lockstep windows executed (0 under process execution, where the
    #: window is provably inert and shards run free).
    epochs: int
    epoch_seconds: float
    wall_seconds: float
    busy_seconds: float
    workers: int
    mode: str
    shards: Tuple[ShardSummary, ...] = field(compare=False, default=())
    #: Cluster-wide SLO view, or ``None`` when no SloConfig was given.
    slo: Optional[SloReport] = field(compare=False, default=None)
    #: Canonically ordered distributed-trace span records (empty unless
    #: ``trace_sessions`` was set).  Excluded from equality: the record
    #: set is deterministic but carries unhashable timelines.
    traces: Tuple[TraceSpanRecord, ...] = field(compare=False, default=())
    #: Post-hoc fleet time series (``timeseries_interval``), or None.
    timeseries: Optional[object] = field(compare=False, default=None)

    @property
    def node_count(self) -> int:
        return self.cluster.node_count

    @property
    def parallel_efficiency(self) -> float:
        """In-worker busy time over wall clock x workers."""
        denom = self.wall_seconds * self.workers
        return self.busy_seconds / denom if denom > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Flat dict of the cluster measurements (see
        :func:`repro.analysis.export.result_to_dict`)."""
        from ..analysis.export import result_to_dict

        return result_to_dict(self)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"cluster[{self.cluster.cells}x{self.cluster.nodes_per_cell} nodes"
            f"/{self.shard_count} shards {self.mode}] "
            f"issued={self.issued} completed={self.completed} "
            f"p99={self.metrics.latency.p99 * 1e3:.1f}ms "
            f"epochs={self.epochs} wall={self.wall_seconds:.2f}s"
        )

    def write_trace(self, path: str) -> int:
        """Export the merged cross-cell Perfetto trace; event count."""
        from .tracing import write_cluster_trace

        if not self.traces:
            raise RuntimeError(
                "no trace records collected; run with trace_sessions > 0"
            )
        return write_cluster_trace(path, self.traces)

    def write_timeseries(self, path: str) -> int:
        """Export the post-hoc time series as JSONL; series count."""
        if self.timeseries is None:
            raise RuntimeError(
                "no time series built; run with timeseries_interval set"
            )
        self.timeseries.to_jsonl(path)
        return len(self.timeseries)


def _require_bounded(
    workload: Workload,
    max_requests: Optional[int],
    max_sim_seconds: Optional[float],
) -> None:
    if max_requests is not None or max_sim_seconds is not None:
        return
    if workload.is_replay or workload.duration_seconds is not None:
        return
    raise ValueError(
        "cluster runs need a bounded workload: give the workload a "
        "duration, use a replay trace, or pass max_requests/max_sim_seconds"
    )


def run_cluster_experiment(
    server_config: ServerConfig,
    cluster: ClusterConfig,
    workload: Workload,
    *,
    seed: int = 0,
    calibration: Calibration = DEFAULT_CALIBRATION,
    max_requests: Optional[int] = None,
    max_sim_seconds: Optional[float] = None,
    slo: Optional[SloConfig] = None,
    trace_sessions: int = 0,
    trace_limit: int = 2000,
    timeseries_interval: Optional[float] = None,
) -> ClusterResult:
    """Simulate ``workload`` against a sharded cluster topology.

    The simulated outcome (``metrics``) depends only on
    ``(server_config, cluster topology, workload, seed)`` — never on
    ``cluster.shards``, ``cluster.execution``, or ``cluster.workers``,
    which select how the work is executed, not what is simulated.
    Observability add-ons are equally inert: ``trace_sessions > 0``
    samples that many user sessions for distributed tracing (the merged
    Perfetto trace on :attr:`ClusterResult.traces`) and
    ``timeseries_interval`` builds the post-hoc fleet time series, both
    without perturbing ``metrics`` (pinned by the neutrality tests).
    """
    cluster = cluster.validate()
    _require_bounded(workload, max_requests, max_sim_seconds)
    if trace_sessions < 0:
        raise ValueError(f"trace_sessions must be >= 0, got {trace_sessions}")
    plan = cluster.plan()
    start = time.perf_counter()

    if cluster.execution == EXEC_PROCESS:
        per_cell, per_shard_raw, issued, busy, workers = _run_process(
            server_config, cluster, calibration, workload, seed,
            plan.shard_cells, max_requests, max_sim_seconds,
            trace_sessions, trace_limit,
        )
        epochs = 0
        mode = EXEC_PROCESS
    else:
        per_cell, per_shard_raw, issued, epochs = _run_serial(
            server_config, cluster, calibration, workload, seed,
            plan.shard_cells, max_requests, max_sim_seconds,
            trace_sessions, trace_limit,
        )
        busy = None
        workers = 1
        mode = "serial"

    ordered = canonical_order(per_cell)
    totals = {"timeouts": 0, "retries": 0, "shed": 0,
              "fluid_served": 0, "delivered": 0, "cells_touched": 0}
    for raw in per_shard_raw:
        for key in totals:
            totals[key] += raw["counters"][key]
    metrics = merge_records(
        ordered,
        retry_count=totals["retries"],
        shed_count=totals["shed"],
    )

    slo_report: Optional[SloReport] = None
    summaries: List[ShardSummary] = []
    window_end = ordered[-1].completion_time if ordered else 0.0
    if slo is not None:
        tracker = SloTracker(slo)
        slo_feed(tracker, ordered)
        slo_report = tracker.report(window_end)
    for raw, cell_ids in zip(per_shard_raw, plan.shard_cells):
        shard_slo: Optional[Dict[str, Any]] = None
        shard_records = canonical_order(raw["cells"].items())
        if slo is not None and shard_records:
            shard_tracker = SloTracker(slo)
            slo_feed(shard_tracker, shard_records)
            shard_slo = shard_tracker.report(window_end).as_dict()
        summaries.append(
            ShardSummary(
                shard_id=raw["shard_id"],
                cells=len(cell_ids),
                cells_touched=raw["counters"]["cells_touched"],
                delivered=raw["counters"]["delivered"],
                completed=len(shard_records),
                timeouts=raw["counters"]["timeouts"],
                retries=raw["counters"]["retries"],
                shed=raw["counters"]["shed"],
                fluid_served=raw["counters"]["fluid_served"],
                slo=shard_slo,
            )
        )

    traces: Tuple[TraceSpanRecord, ...] = ()
    if trace_sessions > 0:
        sessions: Dict[str, str] = {}
        for raw in per_shard_raw:
            sessions.update(raw.get("sessions", {}))
        traces = merge_trace_records(
            (raw.get("traces", ()) for raw in per_shard_raw), sessions
        )

    timeseries = None
    if timeseries_interval is not None:
        from .timeseries import cluster_timeseries

        timeseries = cluster_timeseries(
            per_cell, interval=timeseries_interval, slo=slo,
        )

    wall = time.perf_counter() - start
    return ClusterResult(
        cluster=cluster,
        metrics=metrics,
        shard_count=plan.shards,
        issued=issued,
        completed=len(ordered),
        timeouts=totals["timeouts"],
        retries=totals["retries"],
        shed=totals["shed"],
        fluid_served=totals["fluid_served"],
        cells_touched=totals["cells_touched"],
        epochs=epochs,
        epoch_seconds=cluster.resolved_epoch_seconds(),
        wall_seconds=wall,
        busy_seconds=wall if busy is None else busy,
        workers=workers,
        mode=mode,
        shards=tuple(summaries),
        slo=slo_report,
        traces=traces,
        timeseries=timeseries,
    )


# -- serial coordinator ----------------------------------------------------


def _pick_least_backlog(
    cluster: ClusterConfig,
    shards: List[ShardRuntime],
    shard_of: List[int],
) -> int:
    """Cell with the smallest backlog snapshot (ties -> lowest cell id).

    Snapshots are *epoch-stale*: they reflect shard state at the last
    processed epoch boundary.  That staleness is exactly what a real
    global router sees — its view of a remote cell is always at least
    one network latency old — and because the epoch never exceeds the
    minimum latency, the simulation is conservative, not optimistic.
    """
    best = 0
    best_load = shards[shard_of[0]].cell_load(0)
    for cell_id in range(1, cluster.cells):
        load = shards[shard_of[cell_id]].cell_load(cell_id)
        if load < best_load:
            best = cell_id
            best_load = load
    return best


def _run_serial(
    server_config: ServerConfig,
    cluster: ClusterConfig,
    calibration: Calibration,
    workload: Workload,
    seed: int,
    shard_cells: Tuple[Tuple[int, ...], ...],
    max_requests: Optional[int],
    max_sim_seconds: Optional[float],
    trace_sessions: int = 0,
    trace_limit: int = 2000,
) -> Tuple[
    List[Tuple[int, List[CompletionRecord]]],
    List[Dict[str, Any]],
    int,
    int,
]:
    shards = [
        ShardRuntime(
            shard_id, cells, cluster, server_config, calibration,
            trace_limit=trace_limit if trace_sessions > 0 else 0,
        )
        for shard_id, cells in enumerate(shard_cells)
    ]
    shard_of = [0] * cluster.cells
    for shard_id, cells in enumerate(shard_cells):
        for cell_id in cells:
            shard_of[cell_id] = shard_id

    stale_routing = cluster.routing == ROUTE_LEAST_BACKLOG
    width = cluster.resolved_epoch_seconds()
    sampler = TraceSampler(seed, trace_sessions) if trace_sessions > 0 else None
    arrivals = arrival_stream(
        workload, seed,
        max_requests=max_requests, max_sim_seconds=max_sim_seconds,
    )

    def _draw() -> Optional[Arrival]:
        arrival = next(arrivals, None)
        if arrival is not None and sampler is not None:
            arrival.trace = sampler.trace_for(arrival)
        return arrival

    pending: Optional[Arrival] = _draw()
    issued = 0
    epochs = 0

    while True:
        candidate = pending.t if pending is not None else _INF
        for shard in shards:
            peek = shard.peek()
            if peek < candidate:
                candidate = peek
        if candidate == _INF:
            break
        epochs += 1
        boundary = (_epoch_index(candidate, width) + 1) * width

        # Route every arrival inside this window.  Deliveries land at
        # t + ingress >= boundary whenever the epoch is bounded by the
        # minimum latency, so stale-state routing never sees the effect
        # of a decision made in the same window.
        while pending is not None and pending.t < boundary:
            if stale_routing:
                cell_id = _pick_least_backlog(cluster, shards, shard_of)
            else:
                cell_id = route_cell(cluster, pending)
            shards[shard_of[cell_id]].deliver(
                cell_id, pending,
                pending.t + cluster.ingress_latency(cell_id),
            )
            issued += 1
            pending = _draw()

        # Advance every shard with work inside the window to the
        # boundary.  Cells are independent, so the order is irrelevant.
        for shard in shards:
            if shard.peek() < boundary:
                shard.run_until(boundary)

    per_cell: List[Tuple[int, List[CompletionRecord]]] = []
    per_shard: List[Dict[str, Any]] = []
    for shard in shards:
        records = shard.per_cell_records()
        per_cell.extend(records)
        per_shard.append({
            "shard_id": shard.shard_id,
            "cells": dict(records),
            "counters": shard.counters(),
            "traces": shard.trace_records(),
            "sessions": dict(sampler.sessions) if sampler is not None else {},
        })
    return per_cell, per_shard, issued, epochs


# -- process-pool execution ------------------------------------------------


def _run_process(
    server_config: ServerConfig,
    cluster: ClusterConfig,
    calibration: Calibration,
    workload: Workload,
    seed: int,
    shard_cells: Tuple[Tuple[int, ...], ...],
    max_requests: Optional[int],
    max_sim_seconds: Optional[float],
    trace_sessions: int = 0,
    trace_limit: int = 2000,
) -> Tuple[
    List[Tuple[int, List[CompletionRecord]]],
    List[Dict[str, Any]],
    int,
    float,
    int,
]:
    points = [
        ShardPoint(
            cluster=cluster,
            server=server_config,
            calibration=calibration,
            workload=workload,
            seed=seed,
            cell_ids=cells,
            shard_id=shard_id,
            max_requests=max_requests,
            max_sim_seconds=max_sim_seconds,
            trace_sessions=trace_sessions,
            trace_limit=trace_limit,
        )
        for shard_id, cells in enumerate(shard_cells)
    ]
    workers = cluster.workers if cluster.workers is not None else len(points)
    report = run_sweep(
        run_shard_point, points, ParallelConfig(workers=workers),
    )
    per_cell: List[Tuple[int, List[CompletionRecord]]] = []
    per_shard: List[Dict[str, Any]] = []
    issued = 0
    for result in report.results:
        raw = result.value
        issued = max(issued, raw["issued"])
        per_cell.extend(raw["cells"].items())
        per_shard.append(raw)
    return per_cell, per_shard, issued, report.busy_seconds, report.workers
