"""Shard runtimes: per-shard event loops hosting lazily built cells.

A :class:`ShardRuntime` owns one :class:`~repro.sim.Environment` and
the subset of cells packed onto it.  Cells materialize lazily — a cell
that never receives an arrival costs nothing, which is what makes a
10k-node topology tractable when traffic concentrates on a fraction of
it.  Deliveries are scheduled at *absolute* times
(:meth:`~repro.sim.Environment.schedule_at`), so a delivery computed by
the global router lands at the bit-identical instant in every
execution mode.

This module is also the process-pool worker surface
(:class:`ShardPoint` / :func:`run_shard_point`), so it must keep the
``repro.parallel`` import-hygiene rule: no heavyweight analysis or
plotting imports at module load (enforced by the cluster
import-hygiene tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.config import ServerConfig
from ..core.metrics import MetricsCollector
from ..core.request import OUTCOME_OK
from ..hardware.calibration import DEFAULT_CALIBRATION, Calibration
from ..serving.fleet import Fleet
from ..serving.resilience import ResiliencePolicy
from ..sim import Environment, RandomStreams
from ..sim.events import Event
from ..vision.datasets import reference_dataset
from ..workload import Workload
from .config import (
    ROUTE_ROUND_ROBIN,
    ClusterConfig,
    route_hash_cell,
)
from .fluid import FluidCellModel
from .records import SPAN_NETWORK, CompletionRecord

__all__ = [
    "Arrival",
    "arrival_stream",
    "CellRuntime",
    "ShardRuntime",
    "ShardPoint",
    "run_shard_point",
]


class Arrival:
    """One routed request leaving the global routing tier."""

    __slots__ = ("seq", "t", "image", "phase", "user", "key", "trace")

    def __init__(self, seq, t, image, phase, user, key, trace=None) -> None:
        self.seq = seq
        self.t = t
        self.image = image
        self.phase = phase
        self.user = user
        self.key = key
        #: Distributed TraceContext stamped by the routing tier, or None.
        self.trace = trace


def arrival_stream(
    workload: Workload,
    seed: int,
    *,
    max_requests: Optional[int] = None,
    max_sim_seconds: Optional[float] = None,
) -> Iterator[Arrival]:
    """Draw the workload's arrival sequence, identically everywhere.

    Uses the exact stream prefix (``fleet``), default dataset, and draw
    order of :func:`~repro.serving.fleet.run_fleet_experiment`, so a
    one-cell cluster replays the very same floats — and every process
    worker, consuming the whole stream and filtering to its own cells,
    sees the very same arrivals as the serial coordinator.
    """
    source = workload.source(
        RandomStreams(seed), prefix="fleet",
        default_dataset=reference_dataset("medium"),
    )
    now = 0.0
    seq = 0
    while True:
        if max_requests is not None and seq >= max_requests:
            return
        interval = source.next_interval(now)
        if interval is None:
            return
        now += interval
        if max_sim_seconds is not None and now > max_sim_seconds:
            return
        image = source.next_image()
        yield Arrival(seq, now, image, source.last_phase,
                      source.last_user, source.last_key)
        seq += 1


def route_cell(cluster: ClusterConfig, arrival: Arrival) -> int:
    """Feedback-free routing (hash affinity / round-robin).

    Stale-backlog routing lives in the serial coordinator — it needs
    cross-shard snapshots a pool worker cannot see.
    """
    if cluster.cells == 1:
        return 0
    if cluster.routing == ROUTE_ROUND_ROBIN:
        return arrival.seq % cluster.cells
    key = arrival.user if arrival.user is not None else arrival.seq
    return route_hash_cell(cluster.topology_seed, key, cluster.cells)


class CellRuntime:
    """One routing cell: a lazily built fleet plus its record sink."""

    __slots__ = (
        "cell_id", "env", "cluster", "server_config", "calibration",
        "resilience", "ingress", "egress", "records", "collector",
        "fleet", "fluid", "tracer", "trace_records",
    )

    def __init__(
        self,
        env: Environment,
        cell_id: int,
        cluster: ClusterConfig,
        server_config: ServerConfig,
        calibration: Calibration,
        resilience: Optional[ResiliencePolicy],
        tracer=None,
    ) -> None:
        self.env = env
        self.cell_id = cell_id
        self.cluster = cluster
        self.server_config = server_config
        self.calibration = calibration
        self.resilience = resilience
        self.ingress = cluster.ingress_latency(cell_id)
        self.egress = cluster.egress_latency(cell_id)
        self.records: List[CompletionRecord] = []
        #: Arms trace-carrying requests only (distributed tracing).
        self.tracer = tracer
        self.trace_records: List = []
        #: Never armed: its run-global counters feed the merged metrics.
        self.collector = MetricsCollector()
        self.fleet: Optional[Fleet] = None
        self.fluid: Optional[FluidCellModel] = None
        if cluster.fluid:
            self.fluid = FluidCellModel(
                server_config, calibration, cluster.gpu_count,
                hot_threshold=cluster.fluid_hot_threshold,
                hot_window_seconds=cluster.fluid_hot_window_seconds,
            )

    def _ensure_fleet(self) -> Fleet:
        if self.fleet is None:
            cluster = self.cluster
            self.fleet = Fleet(
                self.env,
                node_count=cluster.nodes_per_cell,
                server_config=self.server_config,
                calibration=self.calibration,
                gpu_count=cluster.gpu_count,
                per_node_cap=cluster.per_node_cap,
                policy=cluster.cell_policy,
                metrics=self.collector,
                on_complete=self._record,
                resilience=self.resilience,
                streams=RandomStreams(0).spawn(f"cell:{self.cell_id}")
                if self.resilience is not None else None,
                node_ids=cluster.node_ids(self.cell_id),
            )
            if self.tracer is not None:
                for server in self.fleet.servers:
                    server.tracer = self.tracer
        return self.fleet

    def _record(self, request) -> None:
        self.records.append(
            CompletionRecord.from_request(
                request, ingress=self.ingress, egress=self.egress)
        )
        if getattr(request, "trace", None) is not None and request.timeline:
            from .tracing import TraceSpanRecord

            self.trace_records.append(
                TraceSpanRecord.from_request(
                    request, cell_id=self.cell_id,
                    ingress=self.ingress, egress=self.egress,
                )
            )

    def inject(self, image, phase: Optional[str], trace=None) -> None:
        """Deliver one request to the cell (called at the delivery time)."""
        if self.fluid is not None and self.fleet is None:
            if not self.fluid.note_arrival(self.env.now):
                # Fluid-served requests have no discrete spans to trace;
                # a sampled session simply has no in-cell record here.
                self._fluid_complete(image, phase)
                return
            # The cell just turned hot: this arrival and everything after
            # it runs on the discrete-event fleet.
        self._ensure_fleet().submit(image, phase=phase, trace=trace)

    def _fluid_complete(self, image, phase: Optional[str]) -> None:
        assert self.fluid is not None
        now = self.env.now
        latency, spans, batch = self.fluid.serve(image)
        self.fluid.fluid_served += 1
        self.collector.total_completed += 1
        fabric = self.ingress + self.egress
        if fabric > 0.0:
            spans[SPAN_NETWORK] = fabric
        self.records.append(
            CompletionRecord(
                arrival_time=now - self.ingress,
                completion_time=now + latency + self.egress,
                latency=latency + fabric,
                outcome=OUTCOME_OK,
                spans=spans,
                batch_size=batch,
                eviction_count=0,
                served_from=None,
                workload_phase=phase,
            )
        )

    @property
    def load(self) -> int:
        """Backlog + in-flight, the stale-snapshot routing signal."""
        if self.fleet is None:
            return 0
        balancer = self.fleet.balancer
        return balancer.backlog_depth + balancer.total_outstanding


class ShardRuntime:
    """One event loop advancing a packed subset of cells in lockstep."""

    def __init__(
        self,
        shard_id: int,
        cell_ids: Tuple[int, ...],
        cluster: ClusterConfig,
        server_config: ServerConfig,
        calibration: Calibration,
        resilience: Optional[ResiliencePolicy] = None,
        trace_limit: int = 0,
    ) -> None:
        self.shard_id = shard_id
        self.cell_ids = cell_ids
        self.cluster = cluster
        self.server_config = server_config
        self.calibration = calibration
        self.resilience = resilience
        #: Per-cell retention cap for distributed tracing (0 = off).
        #: Per *cell* so the exported trace set is a pure function of the
        #: topology, invariant to the shard packing.
        self.trace_limit = trace_limit
        self.env = Environment()
        self.cells: Dict[int, CellRuntime] = {}
        self.delivered = 0

    def cell(self, cell_id: int) -> CellRuntime:
        runtime = self.cells.get(cell_id)
        if runtime is None:
            tracer = None
            if self.trace_limit > 0:
                from ..telemetry.tracer import Tracer

                tracer = Tracer(limit=self.trace_limit, only_traced=True)
            runtime = CellRuntime(
                self.env, cell_id, self.cluster, self.server_config,
                self.calibration, self.resilience, tracer=tracer,
            )
            self.cells[cell_id] = runtime
        return runtime

    def deliver(self, cell_id: int, arrival: Arrival, deliver_t: float) -> None:
        """Schedule one fabric delivery at its exact absolute time."""
        cell = self.cell(cell_id)
        event = Event(self.env)
        event._ok = True
        event._value = None
        event.callbacks.append(
            lambda _event, cell=cell, arrival=arrival: cell.inject(
                arrival.image, arrival.phase, arrival.trace)
        )
        self.env.schedule_at(event, deliver_t)
        self.delivered += 1

    def peek(self) -> float:
        return self.env.peek()

    def run_until(self, at: float) -> None:
        self.env.run(until=at)

    def drain(self) -> None:
        """Run the shard's queue dry (no more cross-shard input coming)."""
        self.env.run()

    def cell_load(self, cell_id: int) -> int:
        runtime = self.cells.get(cell_id)
        return 0 if runtime is None else runtime.load

    # -- result surface ----------------------------------------------------

    def per_cell_records(self) -> List[Tuple[int, List[CompletionRecord]]]:
        return [(cell_id, runtime.records)
                for cell_id, runtime in self.cells.items()]

    def trace_records(self) -> List:
        """Every cell's trace span records, in ascending cell-id order."""
        records: List = []
        for cell_id in sorted(self.cells):
            records.extend(self.cells[cell_id].trace_records)
        return records

    def counters(self) -> Dict[str, int]:
        timeouts = retries = shed = fluid = 0
        for runtime in self.cells.values():
            timeouts += runtime.collector.total_timeouts
            retries += runtime.collector.total_retries
            shed += runtime.collector.total_shed
            if runtime.fluid is not None:
                fluid += runtime.fluid.fluid_served
        return {
            "timeouts": timeouts,
            "retries": retries,
            "shed": shed,
            "fluid_served": fluid,
            "delivered": self.delivered,
            "cells_touched": len(self.cells),
        }


# -- process-pool execution ------------------------------------------------


@dataclass(frozen=True, kw_only=True)
class ShardPoint:
    """Picklable spec for one shard executed in a pool worker.

    The worker regenerates the *entire* arrival stream from
    ``(workload, seed)`` — identical draws everywhere — routes every
    arrival with the feedback-free policy, keeps only its own cells,
    and runs them to completion in one pass (no epochs needed: with
    hash/round-robin routing the lockstep window is pure bookkeeping).
    """

    cluster: ClusterConfig
    server: ServerConfig
    calibration: Calibration = DEFAULT_CALIBRATION
    workload: Workload
    seed: int = 0
    cell_ids: Tuple[int, ...] = ()
    shard_id: int = 0
    max_requests: Optional[int] = None
    max_sim_seconds: Optional[float] = None
    #: Distributed-tracing session budget (0 = tracing off).  Every
    #: worker regenerates the same arrival stream, so every worker
    #: samples the identical sessions.
    trace_sessions: int = 0
    #: Per-cell retention cap for traced requests.
    trace_limit: int = 2000


def run_shard_point(point: ShardPoint) -> Dict[str, Any]:
    """Task: simulate one shard's cells against the full workload."""
    runtime = ShardRuntime(
        point.shard_id, point.cell_ids, point.cluster, point.server,
        point.calibration,
        trace_limit=point.trace_limit if point.trace_sessions > 0 else 0,
    )
    sampler = None
    if point.trace_sessions > 0:
        from .tracing import TraceSampler

        sampler = TraceSampler(point.seed, point.trace_sessions)
    own = frozenset(point.cell_ids)
    issued = 0
    for arrival in arrival_stream(
        point.workload, point.seed,
        max_requests=point.max_requests,
        max_sim_seconds=point.max_sim_seconds,
    ):
        issued += 1
        if sampler is not None:
            # Sampled for every arrival (not just this shard's): session
            # admission is first-come over the global stream.
            arrival.trace = sampler.trace_for(arrival)
        cell_id = route_cell(point.cluster, arrival)
        if cell_id not in own:
            continue
        runtime.deliver(
            cell_id, arrival,
            arrival.t + point.cluster.ingress_latency(cell_id),
        )
    runtime.drain()
    return {
        "shard_id": point.shard_id,
        "issued": issued,
        "cells": {cell_id: records
                  for cell_id, records in runtime.per_cell_records()},
        "counters": runtime.counters(),
        "traces": runtime.trace_records(),
        "sessions": sampler.sessions if sampler is not None else {},
    }
