"""Sharded fleet simulation: planet-scale days in minutes.

``repro.cluster`` partitions a fleet into independent routing *cells*
behind a global routing tier, packs the cells onto execution *shards*
(one :class:`~repro.sim.Environment` each), and advances the shards in
conservative lockstep epochs bounded by the minimum cross-shard fabric
latency.  The simulated results are deterministic and invariant to the
shard count and execution mode — sharding decides how fast the answer
arrives, never what the answer is (MODELING.md §12).

Quickstart::

    from repro.cluster import ClusterConfig, run_cluster_experiment
    from repro.core import ServerConfig
    from repro.workload import Workload

    result = run_cluster_experiment(
        ServerConfig(),
        ClusterConfig(cells=8, nodes_per_cell=4, shards=4,
                      execution="process"),
        Workload.constant(200.0, duration_seconds=30.0),
    )
    print(result.summary())

This package must stay importable without any heavyweight analysis
dependency (the ``repro.parallel`` ``HEAVY_MODULES`` rule) because its
shard task runs inside pool workers; the cluster import-hygiene test
enforces it.
"""

from .config import (
    EXEC_PROCESS,
    EXEC_SERIAL,
    ROUTE_HASH,
    ROUTE_LEAST_BACKLOG,
    ROUTE_ROUND_ROBIN,
    ROUTING_POLICIES,
    ClusterConfig,
    ShardPlan,
    route_hash_cell,
)
from .fluid import FluidCellModel, zero_load_profile
from .records import SPAN_NETWORK, CompletionRecord, canonical_order, merge_records
from .runner import ClusterResult, ShardSummary, run_cluster_experiment
from .shards import ShardPoint, ShardRuntime, arrival_stream, run_shard_point
from .timeseries import cluster_timeseries
from .tracing import (
    TraceSampler,
    TraceSpanRecord,
    cluster_trace_events,
    merge_trace_records,
    write_cluster_trace,
)

__all__ = [
    "ClusterConfig",
    "ClusterResult",
    "CompletionRecord",
    "EXEC_PROCESS",
    "EXEC_SERIAL",
    "FluidCellModel",
    "ROUTE_HASH",
    "ROUTE_LEAST_BACKLOG",
    "ROUTE_ROUND_ROBIN",
    "ROUTING_POLICIES",
    "SPAN_NETWORK",
    "ShardPlan",
    "ShardPoint",
    "ShardRuntime",
    "ShardSummary",
    "TraceSampler",
    "TraceSpanRecord",
    "arrival_stream",
    "canonical_order",
    "cluster_timeseries",
    "cluster_trace_events",
    "merge_records",
    "merge_trace_records",
    "route_hash_cell",
    "run_cluster_experiment",
    "run_shard_point",
    "write_cluster_trace",
    "zero_load_profile",
]
