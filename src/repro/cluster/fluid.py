"""Fluid approximation for cold cells.

A planet-scale day routes most traffic to a minority of hot cells; the
long tail of cells sees a trickle that never builds a queue.  Spending
a full discrete-event fleet on those cells buys nothing: at (near) zero
load every request sails through at the zero-load latency.  The fluid
model serves exactly that — each request completes analytically at the
cell's calibrated zero-load latency, with the span breakdown of an
unloaded request — until the cell turns *hot*, at which point it
switches permanently to discrete-event simulation.

The hot decision is cell-local and monotone (a count of arrivals inside
a sliding window), so it is a pure function of the cell's own arrival
sequence: deterministic, identical under any shard packing and in both
execution modes.

The zero-load latency is measured, not hand-modelled: the first arrival
runs once through a throwaway single-node environment (no RNG draws on
that path), and the resulting latency/spans/batch are cached for every
later fluid completion.  Cell-local and deterministic, hence safe.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..core.config import ServerConfig
from ..core.server import InferenceServer
from ..hardware.calibration import Calibration
from ..hardware.platform import ServerNode
from ..sim import Environment

__all__ = ["FluidCellModel", "zero_load_profile"]


def zero_load_profile(
    image,
    server_config: ServerConfig,
    calibration: Calibration,
    gpu_count: int,
) -> Tuple[float, Dict[str, float], Optional[int]]:
    """(latency, spans, batch_size) of one request on an idle node."""
    env = Environment()
    node = ServerNode(env, calibration, gpu_count=gpu_count)
    server = InferenceServer(env, node, server_config)
    done = server.submit(image, arrival_time=0.0)
    request = env.run(until=done)
    return request.latency, dict(request.spans), request.batch_size


class FluidCellModel:
    """Per-cell fluid state: cached zero-load profile + hot detection."""

    def __init__(
        self,
        server_config: ServerConfig,
        calibration: Calibration,
        gpu_count: int,
        *,
        hot_threshold: int,
        hot_window_seconds: float,
    ) -> None:
        self._server_config = server_config
        self._calibration = calibration
        self._gpu_count = gpu_count
        self._hot_threshold = hot_threshold
        self._hot_window = hot_window_seconds
        self._profile: Optional[Tuple[float, Dict[str, float], Optional[int]]] = None
        self._recent: Deque[float] = deque()
        #: Requests served analytically before the cell went hot.
        self.fluid_served = 0

    def note_arrival(self, now: float) -> bool:
        """Record an arrival; ``True`` when the cell just turned hot.

        The arrival that crosses the threshold (and everything after it)
        belongs to the discrete-event fleet.
        """
        recent = self._recent
        recent.append(now)
        floor = now - self._hot_window
        while recent and recent[0] < floor:
            recent.popleft()
        return len(recent) >= self._hot_threshold

    def serve(self, image) -> Tuple[float, Dict[str, float], Optional[int]]:
        """Zero-load (latency, spans copy, batch_size) for one request."""
        if self._profile is None:
            self._profile = zero_load_profile(
                image, self._server_config, self._calibration, self._gpu_count
            )
        latency, spans, batch = self._profile
        return latency, dict(spans), batch
