"""Cluster topology: cells, shards, and the cross-shard latency model.

A cluster is ``cells`` independent routing groups ("cells"), each a
small :class:`~repro.serving.fleet.Fleet` of ``nodes_per_cell`` nodes
behind its own balancer.  The global routing tier picks a *cell* for
every arrival; cells never talk to each other.  That independence is
the load-bearing design decision: execution *shards* (one
:class:`~repro.sim.Environment` each) are pure packings of cells, so
the simulated results are a function of the topology alone and
invariant to the shard count — the property the determinism tests pin.

The latency model is one-way ``base + jitter(cell)`` per direction,
where the per-cell jitter offset is derived by hashing
``(topology_seed, cell)`` — fixed for the run, identical in every
execution mode.  The conservative synchronization epoch defaults to
the minimum one-way latency (see MODELING.md §12).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..serving.fleet import LEAST_OUTSTANDING, _POLICIES

__all__ = [
    "ROUTE_HASH",
    "ROUTE_ROUND_ROBIN",
    "ROUTE_LEAST_BACKLOG",
    "ROUTING_POLICIES",
    "EXEC_SERIAL",
    "EXEC_PROCESS",
    "ClusterConfig",
    "ShardPlan",
    "route_hash_cell",
]

ROUTE_HASH = "hash"
ROUTE_ROUND_ROBIN = "round_robin"
ROUTE_LEAST_BACKLOG = "least_backlog"
ROUTING_POLICIES = (ROUTE_HASH, ROUTE_ROUND_ROBIN, ROUTE_LEAST_BACKLOG)

EXEC_SERIAL = "serial"
EXEC_PROCESS = "process"
_EXECUTIONS = (EXEC_SERIAL, EXEC_PROCESS)

#: Epoch width used when every cross-shard latency is zero.  With a
#: feedback-free routing policy the epoch is pure bookkeeping (it never
#: affects results), so any positive width works; 1s keeps the epoch
#: count low.  Stale-state routing requires a real positive latency and
#: never reaches this fallback (enforced by ``validate``).
_ZERO_LATENCY_EPOCH = 1.0


def _stable_fraction(topology_seed: int, tag: str) -> float:
    """Deterministic value in [0, 1) from ``(topology_seed, tag)``."""
    digest = hashlib.sha256(f"{topology_seed}:{tag}".encode()).digest()
    return int.from_bytes(digest[:7], "big") / float(1 << 56)


def route_hash_cell(topology_seed: int, key: object, cells: int) -> int:
    """Hash-affinity routing: a stable cell for ``key``.

    SHA-256 based (like :class:`~repro.sim.rng.RandomStreams`), so the
    mapping is identical across interpreter launches and in every pool
    worker — never Python's randomized ``hash()``.
    """
    digest = hashlib.sha256(f"{topology_seed}:route:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % cells


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of cells to execution shards.

    Cells are dealt round-robin (cell ``c`` lives on shard
    ``c % shards``), which balances touched cells across shards for any
    routing policy.  The plan is bookkeeping only: since cells are
    independent, *any* packing yields identical simulated results.
    """

    cells: int
    shards: int
    shard_cells: Tuple[Tuple[int, ...], ...]

    @classmethod
    def build(cls, cells: int, shards: int) -> "ShardPlan":
        count = max(1, min(shards, cells))
        groups: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(range(shard, cells, count)) for shard in range(count)
        )
        return cls(cells=cells, shards=count, shard_cells=groups)

    def shard_of(self, cell: int) -> int:
        return cell % self.shards


@dataclass(frozen=True, kw_only=True)
class ClusterConfig:
    """Topology + execution spec for :func:`repro.cluster.run_cluster_experiment`."""

    #: Routing groups; the unit of balancer locality and of parallelism.
    cells: int = 4
    #: Identical server nodes behind each cell's balancer.
    nodes_per_cell: int = 4
    #: Execution shards (event loops).  Results never depend on this.
    shards: int = 1
    #: Global routing tier policy: ``hash`` (session affinity on the
    #: user id, falling back to the sequence number), ``round_robin``,
    #: or ``least_backlog`` (epoch-stale backlog snapshots).
    routing: str = ROUTE_HASH
    #: Dispatch policy of each cell-local balancer.
    cell_policy: str = LEAST_OUTSTANDING
    per_node_cap: int = 512
    gpu_count: int = 1
    #: One-way router<->cell network latency floor (seconds).
    base_latency_seconds: float = 500e-6
    #: Upper bound of the deterministic per-cell latency offset added on
    #: top of the base (hash-derived from ``topology_seed``).
    jitter_latency_seconds: float = 0.0
    #: Conservative synchronization window; ``None`` = the minimum
    #: one-way latency (the largest provably safe window).
    epoch_seconds: Optional[float] = None
    #: Seed for the latency offsets and hash routing (independent of the
    #: workload seed: same traffic over a different topology draw).
    topology_seed: int = 0
    #: ``serial`` (all shards in-process) or ``process`` (one pool
    #: worker per shard via ``repro.parallel``).
    execution: str = EXEC_SERIAL
    #: Pool size for ``process`` execution; ``None`` = one per shard.
    workers: Optional[int] = None
    #: Fluid approximation for cold cells: serve analytically at the
    #: cell's zero-load latency until the cell turns hot, then switch
    #: permanently to discrete-event simulation (MODELING.md §12).
    fluid: bool = False
    #: Arrivals within ``fluid_hot_window_seconds`` that flip a cell hot.
    fluid_hot_threshold: int = 32
    fluid_hot_window_seconds: float = 1.0

    def validate(self) -> "ClusterConfig":
        if self.cells < 1:
            raise ValueError(f"cells must be >= 1, got {self.cells}")
        if self.nodes_per_cell < 1:
            raise ValueError(
                f"nodes_per_cell must be >= 1, got {self.nodes_per_cell}")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"routing must be one of {ROUTING_POLICIES}, got {self.routing!r}")
        if self.cell_policy not in _POLICIES:
            raise ValueError(
                f"cell_policy must be one of {_POLICIES}, got {self.cell_policy!r}")
        if self.per_node_cap < 1:
            raise ValueError(f"per_node_cap must be >= 1, got {self.per_node_cap}")
        if self.gpu_count < 1:
            raise ValueError(f"gpu_count must be >= 1, got {self.gpu_count}")
        if self.base_latency_seconds < 0:
            raise ValueError(
                f"base_latency_seconds must be >= 0, got {self.base_latency_seconds}")
        if self.jitter_latency_seconds < 0:
            raise ValueError(
                "jitter_latency_seconds must be >= 0, got "
                f"{self.jitter_latency_seconds}")
        if self.epoch_seconds is not None and self.epoch_seconds <= 0:
            raise ValueError(
                f"epoch_seconds must be positive, got {self.epoch_seconds}")
        if self.execution not in _EXECUTIONS:
            raise ValueError(
                f"execution must be one of {_EXECUTIONS}, got {self.execution!r}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.fluid:
            if self.fluid_hot_threshold < 1:
                raise ValueError(
                    f"fluid_hot_threshold must be >= 1, got {self.fluid_hot_threshold}")
            if self.fluid_hot_window_seconds <= 0:
                raise ValueError(
                    "fluid_hot_window_seconds must be positive, got "
                    f"{self.fluid_hot_window_seconds}")
        if self.routing == ROUTE_LEAST_BACKLOG:
            if self.execution == EXEC_PROCESS:
                raise ValueError(
                    "least_backlog routing needs the serial coordinator "
                    "(process shards cannot exchange backlog snapshots); "
                    "use hash or round_robin routing with process execution")
            floor = self.min_latency_seconds()
            if floor <= 0:
                raise ValueError(
                    "least_backlog routing requires a positive cross-shard "
                    "latency (the epoch bounds snapshot staleness)")
            if self.epoch_seconds is not None and self.epoch_seconds > floor:
                raise ValueError(
                    f"epoch_seconds ({self.epoch_seconds}) must not exceed the "
                    f"minimum cross-shard latency ({floor}) under "
                    "least_backlog routing")
        return self

    def with_overrides(self, **overrides) -> "ClusterConfig":
        return replace(self, **overrides).validate()

    # -- derived topology --------------------------------------------------

    @property
    def node_count(self) -> int:
        return self.cells * self.nodes_per_cell

    def ingress_latency(self, cell: int) -> float:
        """One-way router -> cell delivery latency (seconds)."""
        if self.jitter_latency_seconds == 0.0:
            return self.base_latency_seconds
        offset = _stable_fraction(self.topology_seed, f"cell:{cell}:in")
        return self.base_latency_seconds + offset * self.jitter_latency_seconds

    def egress_latency(self, cell: int) -> float:
        """One-way cell -> router response latency (seconds)."""
        if self.jitter_latency_seconds == 0.0:
            return self.base_latency_seconds
        offset = _stable_fraction(self.topology_seed, f"cell:{cell}:out")
        return self.base_latency_seconds + offset * self.jitter_latency_seconds

    def min_latency_seconds(self) -> float:
        """Minimum one-way latency over all cells (the lookahead bound)."""
        if self.jitter_latency_seconds == 0.0:
            return self.base_latency_seconds
        return min(
            min(self.ingress_latency(cell), self.egress_latency(cell))
            for cell in range(self.cells)
        )

    def resolved_epoch_seconds(self) -> float:
        """The lockstep window actually used by the coordinator."""
        if self.epoch_seconds is not None:
            return self.epoch_seconds
        floor = self.min_latency_seconds()
        return floor if floor > 0 else _ZERO_LATENCY_EPOCH

    def plan(self) -> ShardPlan:
        return ShardPlan.build(self.cells, self.shards)

    def node_ids(self, cell: int) -> Tuple[str, ...]:
        """Globally unique, partition-stable node ids for one cell."""
        return tuple(
            f"c{cell}/n{index}" for index in range(self.nodes_per_cell)
        )
