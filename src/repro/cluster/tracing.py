"""Distributed tracing across the cluster fabric.

The global routing tier samples a bounded set of user *sessions* and
stamps every arrival of a sampled session with a deterministic
:class:`~repro.telemetry.context.TraceContext` (one root per session,
one child span per request).  Cells arm exactly those requests with a
per-cell :class:`~repro.telemetry.tracer.Tracer`, and each completion
is snapshotted into a picklable :class:`TraceSpanRecord` — so spans
survive the process-pool shard boundary the same way
:class:`~repro.cluster.records.CompletionRecord` does.

At the end of a run the records from every cell merge into **one**
Perfetto timeline (:func:`cluster_trace_events`): a router process
group with one row per traced session, one process group per cell with
the in-cell span slices at their true simulation times, fabric flow
arrows from the router row into each cell, and session flow arrows
linking consecutive requests of one trace across *different* cells —
the cross-cell view the golden-trace test pins.

Everything here is deterministic (SHA-256-derived ids, no RNG) and
strictly observational: tracing on/off never changes the merged
``RunMetrics`` (asserted by the cluster observer-neutrality tests).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..telemetry.context import TraceContext

__all__ = [
    "TraceSampler",
    "TraceSpanRecord",
    "merge_trace_records",
    "cluster_trace_events",
    "write_cluster_trace",
]

_CATEGORY = "cluster"
_FLOW_FABRIC = "fabric"
_FLOW_SESSION = "session"

#: Process id of the global routing tier's track group; cells follow.
PID_ROUTER = 0


class TraceSampler:
    """Router-side session sampling: first ``max_sessions`` distinct keys.

    The decision is a pure function of the arrival sequence (which every
    execution mode replays identically — the serial coordinator routes
    the stream once, each pool worker regenerates and filters it), so
    the same arrivals carry the same :class:`TraceContext` everywhere.
    A session is the workload's user when present, else the arrival's
    own sequence number (every request its own one-span trace).
    """

    def __init__(self, seed: int, max_sessions: int) -> None:
        if max_sessions < 0:
            raise ValueError(f"max_sessions must be >= 0, got {max_sessions}")
        self.seed = seed
        self.max_sessions = max_sessions
        self._roots: Dict[object, TraceContext] = {}
        #: trace_id -> human-readable session label.
        self.sessions: Dict[str, str] = {}

    def trace_for(self, arrival) -> Optional[TraceContext]:
        """The per-request child context, or None (session not sampled).

        Must be called for *every* arrival in stream order — admission
        is first-come, so skipping calls would change which sessions
        are sampled.
        """
        if self.max_sessions == 0:
            return None
        key = arrival.user if arrival.user is not None else f"seq:{arrival.seq}"
        root = self._roots.get(key)
        if root is None:
            if len(self._roots) >= self.max_sessions:
                return None
            root = TraceContext.derive("cluster", self.seed, key)
            self._roots[key] = root
            self.sessions[root.trace_id] = str(key)
        return root.child("req", arrival.seq)


class TraceSpanRecord:
    """One traced in-cell completion, picklable across shard workers.

    Timeline timestamps are absolute simulation times (cells share the
    global clock — deliveries are scheduled at absolute instants), so
    records from different cells merge without any clock adjustment.
    Router-side coordinates are recovered from ``ingress``/``egress``.
    """

    __slots__ = (
        "cell_id",
        "trace_id",
        "span_id",
        "parent_id",
        "session",
        "image",
        "arrival_time",
        "completion_time",
        "outcome",
        "gpu_index",
        "batch_size",
        "workload_phase",
        "timeline",
        "ingress",
        "egress",
    )

    def __init__(
        self,
        *,
        cell_id: int,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        image: str,
        arrival_time: float,
        completion_time: float,
        outcome: str,
        gpu_index: Optional[int],
        batch_size: Optional[int],
        workload_phase: Optional[str],
        timeline: Tuple[Tuple[str, float, float], ...],
        ingress: float,
        egress: float,
        session: Optional[str] = None,
    ) -> None:
        self.cell_id = cell_id
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.session = session
        self.image = image
        self.arrival_time = arrival_time
        self.completion_time = completion_time
        self.outcome = outcome
        self.gpu_index = gpu_index
        self.batch_size = batch_size
        self.workload_phase = workload_phase
        self.timeline = timeline
        self.ingress = ingress
        self.egress = egress

    def __repr__(self) -> str:
        return (
            f"<TraceSpanRecord {self.trace_id[:8]}../{self.span_id[:8]}.. "
            f"cell={self.cell_id} spans={len(self.timeline)}>"
        )

    @classmethod
    def from_request(
        cls, request, *, cell_id: int, ingress: float, egress: float
    ) -> "TraceSpanRecord":
        trace = request.trace
        return cls(
            cell_id=cell_id,
            trace_id=trace.trace_id,
            span_id=trace.span_id,
            parent_id=trace.parent_id,
            image=str(request.image),
            arrival_time=request.arrival_time,
            completion_time=request.completion_time,
            outcome=request.outcome,
            gpu_index=request.gpu_index,
            batch_size=request.batch_size,
            workload_phase=request.workload_phase,
            timeline=tuple(request.timeline or ()),
            ingress=ingress,
            egress=egress,
        )


def merge_trace_records(
    per_shard: Iterable[Sequence[TraceSpanRecord]],
    sessions: Optional[Dict[str, str]] = None,
) -> Tuple[TraceSpanRecord, ...]:
    """Canonically ordered cross-shard trace records.

    Sorted by (trace id, router-side arrival, cell id): a pure function
    of the topology, never of the shard packing — so serial and process
    runs export byte-identical traces.  ``sessions`` back-fills the
    human-readable session label onto each record.
    """
    merged: List[TraceSpanRecord] = []
    for records in per_shard:
        merged.extend(records)
    merged.sort(
        key=lambda r: (r.trace_id, r.arrival_time - r.ingress, r.cell_id)
    )
    if sessions:
        for record in merged:
            if record.session is None:
                record.session = sessions.get(record.trace_id)
    return tuple(merged)


def cluster_trace_events(
    records: Sequence[TraceSpanRecord],
    process_name: str = "repro-cluster",
) -> List[dict]:
    """One merged Perfetto timeline from all cells' trace records.

    Track layout (Trace Event Format):

    - pid 0 — the **router**: one row per traced session, an ``rpc``
      slice per request spanning issue -> response (with nested
      ``ingress``/``egress`` fabric slices when the fabric latency is
      non-zero);
    - pid 1+k — **cell k**: one row per traced request holding its
      in-cell span slices at true simulation times;
    - ``fabric`` flow arrows from each router slice to the request's
      first in-cell span;
    - ``session`` flow arrows chaining consecutive requests of one
      trace **across cells** — the arrows the cross-cell golden test
      asserts on.
    """
    events: List[dict] = []

    def process_meta(pid: int, name: str) -> None:
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}
        )
        events.append(
            {"name": "process_sort_index", "ph": "M", "pid": pid,
             "args": {"sort_index": pid}}
        )

    process_meta(PID_ROUTER, f"{process_name} router")
    cell_ids = sorted({record.cell_id for record in records})
    cell_pid = {cell: PID_ROUTER + 1 + index for index, cell in enumerate(cell_ids)}
    for cell, pid in cell_pid.items():
        process_meta(pid, f"{process_name} cell c{cell}")

    ordered = sorted(
        records, key=lambda r: (r.trace_id, r.arrival_time - r.ingress, r.cell_id)
    )
    router_tid: Dict[str, int] = {}
    flow_id = 0
    previous: Dict[str, Tuple[TraceSpanRecord, int]] = {}

    for index, record in enumerate(ordered):
        tid = router_tid.get(record.trace_id)
        if tid is None:
            tid = len(router_tid)
            router_tid[record.trace_id] = tid
            label = record.session or record.trace_id[:8]
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": PID_ROUTER,
                    "tid": tid,
                    "args": {"name": f"session {label}"},
                }
            )
        issue_t = record.arrival_time - record.ingress
        response_t = record.completion_time + record.egress
        span_args = {
            "trace_id": record.trace_id,
            "span_id": record.span_id,
            "cell": record.cell_id,
            "outcome": record.outcome,
        }
        if record.workload_phase is not None:
            span_args["phase"] = record.workload_phase
        events.append(
            {
                "name": f"rpc cell c{record.cell_id}",
                "cat": _CATEGORY,
                "ph": "X",
                "pid": PID_ROUTER,
                "tid": tid,
                "ts": issue_t * 1e6,
                "dur": (response_t - issue_t) * 1e6,
                "args": span_args,
            }
        )
        if record.ingress > 0.0:
            events.append(
                {
                    "name": "ingress",
                    "cat": _CATEGORY,
                    "ph": "X",
                    "pid": PID_ROUTER,
                    "tid": tid,
                    "ts": issue_t * 1e6,
                    "dur": record.ingress * 1e6,
                    "args": {"trace_id": record.trace_id},
                }
            )
        if record.egress > 0.0:
            events.append(
                {
                    "name": "egress",
                    "cat": _CATEGORY,
                    "ph": "X",
                    "pid": PID_ROUTER,
                    "tid": tid,
                    "ts": record.completion_time * 1e6,
                    "dur": record.egress * 1e6,
                    "args": {"trace_id": record.trace_id},
                }
            )

        pid = cell_pid[record.cell_id]
        request_tid = index
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": request_tid,
                "args": {
                    "name": f"{record.trace_id[:8]}../{record.span_id[:8]}.. "
                            f"({record.image})"
                },
            }
        )
        first_span_start = record.arrival_time
        for span, start, end in sorted(record.timeline, key=lambda e: e[1]):
            first_span_start = min(first_span_start, start)
            events.append(
                {
                    "name": span,
                    "cat": _CATEGORY,
                    "ph": "X",
                    "pid": pid,
                    "tid": request_tid,
                    "ts": start * 1e6,
                    "dur": (end - start) * 1e6,
                    "args": {
                        **span_args,
                        "batch_size": record.batch_size,
                        "gpu": record.gpu_index,
                    },
                }
            )

        # Router -> cell fabric arrow (issue instant to first in-cell span).
        flow_id += 1
        events.append(
            {
                "name": _FLOW_FABRIC,
                "cat": _FLOW_FABRIC,
                "ph": "s",
                "id": flow_id,
                "pid": PID_ROUTER,
                "tid": tid,
                "ts": issue_t * 1e6,
            }
        )
        events.append(
            {
                "name": _FLOW_FABRIC,
                "cat": _FLOW_FABRIC,
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "pid": pid,
                "tid": request_tid,
                "ts": first_span_start * 1e6,
            }
        )

        # Session chain: arrow from the previous request of this trace to
        # this one.  When the two land in different cells the arrow spans
        # two process groups — the cross-cell link.
        chained = previous.get(record.trace_id)
        if chained is not None:
            prior, prior_tid = chained
            flow_id += 1
            events.append(
                {
                    "name": _FLOW_SESSION,
                    "cat": _FLOW_SESSION,
                    "ph": "s",
                    "id": flow_id,
                    "pid": cell_pid[prior.cell_id],
                    "tid": prior_tid,
                    "ts": prior.completion_time * 1e6,
                }
            )
            events.append(
                {
                    "name": _FLOW_SESSION,
                    "cat": _FLOW_SESSION,
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "pid": pid,
                    "tid": request_tid,
                    "ts": first_span_start * 1e6,
                }
            )
        previous[record.trace_id] = (record, request_tid)

    events.sort(key=lambda e: (e.get("ts", -1.0), e.get("ph") != "X"))
    return events


def write_cluster_trace(
    path: str,
    records: Sequence[TraceSpanRecord],
    process_name: str = "repro-cluster",
) -> int:
    """Write the merged cross-cell Perfetto trace; returns event count."""
    events = cluster_trace_events(records, process_name=process_name)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return len(events)
