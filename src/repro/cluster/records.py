"""Cross-shard metrics merging: completion records -> one ``RunMetrics``.

Each cell collects a :class:`CompletionRecord` per finished request —
a frozen, picklable snapshot of exactly the fields
:class:`~repro.core.metrics.MetricsCollector` reads.  At the end of a
cluster run the records from every cell are merged in a *canonical
order* (stable sort by router-side completion time, cells concatenated
in cell-id order) and replayed through a fresh collector.

The canonical order is what makes the merge well-defined:

- float summation order inside ``MetricsCollector.finalize`` (span
  means) is fixed by the record order, so the merged ``RunMetrics`` is
  bit-identical no matter how cells were packed into shards or whether
  shards ran serially or in a process pool;
- for a single cell the records arrive already sorted by completion
  time (completions are processed in event order), so the stable sort
  is the identity permutation and the merged metrics are byte-identical
  to an unsharded :func:`~repro.serving.fleet.run_fleet_experiment`
  with the same seed and a zero-latency fabric.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.metrics import MetricsCollector, RunMetrics
from ..core.request import OUTCOME_OK

__all__ = ["CompletionRecord", "merge_records", "SPAN_NETWORK"]

#: Extra span carrying the cross-shard fabric time (ingress + egress).
#: Only stamped when the fabric latency is non-zero, so zero-latency
#: clusters keep span ledgers identical to the unsharded fleet.
SPAN_NETWORK = "network"


class CompletionRecord:
    """One finished request as seen from the global routing tier.

    Duck-types the slice of ``InferenceRequest`` that
    ``MetricsCollector.record``/``finalize`` read, with all times in
    router coordinates: ``arrival_time`` is when the router issued the
    request, ``completion_time``/``latency`` include the ingress and
    egress fabric hops.  ``__slots__`` keeps a 100M-request day compact
    and the default reduce keeps it picklable for process-pool shards.
    """

    __slots__ = (
        "arrival_time",
        "completion_time",
        "latency",
        "outcome",
        "spans",
        "batch_size",
        "eviction_count",
        "served_from",
        "workload_phase",
    )

    def __init__(
        self,
        *,
        arrival_time: float,
        completion_time: float,
        latency: float,
        outcome: str,
        spans: Dict[str, float],
        batch_size: Optional[int],
        eviction_count: int,
        served_from: Optional[str],
        workload_phase: Optional[str],
    ) -> None:
        self.arrival_time = arrival_time
        self.completion_time = completion_time
        self.latency = latency
        self.outcome = outcome
        self.spans = spans
        self.batch_size = batch_size
        self.eviction_count = eviction_count
        self.served_from = served_from
        self.workload_phase = workload_phase

    def __repr__(self) -> str:
        return (
            f"<CompletionRecord t={self.arrival_time:.6f} "
            f"done={self.completion_time:.6f} {self.outcome}>"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, CompletionRecord):
            return NotImplemented
        return all(
            getattr(self, slot) == getattr(other, slot) for slot in self.__slots__
        )

    @classmethod
    def from_request(
        cls,
        request,
        *,
        ingress: float,
        egress: float,
    ) -> "CompletionRecord":
        """Snapshot a completed in-cell request into router coordinates.

        With a zero-latency fabric every float passes through untouched
        (adding ``0.0`` is exact), preserving byte-identity with the
        unsharded fleet path.
        """
        fabric = ingress + egress
        spans = request.spans
        if fabric > 0.0:
            spans = dict(spans)
            spans[SPAN_NETWORK] = spans.get(SPAN_NETWORK, 0.0) + fabric
        return cls(
            arrival_time=request.arrival_time - ingress,
            completion_time=request.completion_time + egress,
            latency=request.latency + fabric,
            outcome=request.outcome,
            spans=spans,
            batch_size=request.batch_size,
            eviction_count=request.eviction_count,
            served_from=request.served_from,
            workload_phase=request.workload_phase,
        )


def canonical_order(
    per_cell: Iterable[Tuple[int, List[CompletionRecord]]],
) -> List[CompletionRecord]:
    """Merge per-cell record lists into the canonical replay order.

    Cells are concatenated in ascending cell id and stable-sorted by
    router-side completion time: simultaneous completions keep their
    (cell id, in-cell) order, which depends only on the topology —
    never on the shard packing or execution mode.
    """
    merged: List[CompletionRecord] = []
    for _cell, records in sorted(per_cell, key=lambda item: item[0]):
        merged.extend(records)
    merged.sort(key=lambda record: record.completion_time)
    return merged


def merge_records(
    ordered: List[CompletionRecord],
    *,
    retry_count: int = 0,
    shed_count: int = 0,
) -> RunMetrics:
    """Replay canonically ordered records through a fresh collector.

    The measurement window spans the whole run: armed at t=0, closed at
    the last router-side completion — the same window an exhausted
    bounded workload produces in ``run_fleet_experiment`` with
    ``warmup_requests=0``.
    """
    if not ordered:
        raise RuntimeError("no requests completed in the cluster run")
    collector = MetricsCollector()
    collector.arm(0.0)
    window_end = 0.0
    for record in ordered:
        collector.record(record)
        if record.completion_time > window_end:
            window_end = record.completion_time
    collector.disarm(window_end)
    metrics = collector.finalize()
    if retry_count or shed_count:
        metrics = replace(metrics, retry_count=retry_count, shed_count=shed_count)
    return metrics


def slo_feed(tracker, ordered: Iterable[CompletionRecord]) -> None:
    """Stream records (already canonically ordered) into an SLO tracker."""
    for record in ordered:
        tracker.observe(
            record.latency,
            record.completion_time,
            ok=record.outcome == OUTCOME_OK,
        )
