"""Cluster scaling harness: shard-count efficiency and the 10k-node day.

Seeds ``BENCH_cluster.json`` (mirroring ``BENCH_parallel.json``): every
future PR touching the cluster path reruns this and compares.  Two
probes:

- **scaling**: one fixed topology simulated serially and then with 1,
  2, and 4 process shards — wall clock, in-worker busy time, parallel
  efficiency, and a bit-identity check of every run's merged metrics
  against the serial baseline (the shard-count-invariance guarantee,
  measured rather than assumed).
- **day**: a 10,000-node cluster (2500 cells x 4 nodes) replaying the
  checked-in golden 24 h trace with the fluid cold-cell model on —
  the headline "a cluster-day in minutes" number.

Nothing here prints; the CLI (``python -m repro bench --cluster``)
renders the returned dict and writes the JSON file via
:func:`repro.parallel.bench.write_bench`.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from typing import Any, Dict, Optional, Sequence

from ..core.config import ServerConfig
from ..workload import Workload
from .config import EXEC_PROCESS, ClusterConfig
from .runner import ClusterResult, run_cluster_experiment

__all__ = ["GOLDEN_DAY_TRACE", "bench_day", "bench_scaling", "run_cluster_bench"]

#: Bump when the harness shape changes incompatibly.
SCHEMA_VERSION = 1

#: The checked-in golden 24 h trace (relative to the repository root,
#: where CI and the bench CLI run).
GOLDEN_DAY_TRACE = os.path.join(
    "tests", "workload", "golden", "day.jsonl.gz")


def _fingerprint(result: ClusterResult) -> Dict[str, Any]:
    """Small stable signature of a run's merged metrics."""
    metrics = result.metrics
    return {
        "issued": result.issued,
        "completed": metrics.completed,
        "throughput": metrics.throughput,
        "latency_mean": metrics.latency.mean,
        "latency_p99": metrics.latency.p99,
    }


def bench_scaling(
    shard_counts: Sequence[int] = (1, 2, 4),
    *,
    cells: int = 8,
    nodes_per_cell: int = 2,
    rate: float = 400.0,
    duration_seconds: float = 30.0,
    seed: int = 0,
) -> Dict[str, Any]:
    """Serial baseline vs N process shards on one fixed topology."""
    workload = Workload.constant(rate, duration_seconds=duration_seconds)
    server = ServerConfig()
    base = ClusterConfig(cells=cells, nodes_per_cell=nodes_per_cell)
    serial = run_cluster_experiment(server, base, workload, seed=seed)
    runs = []
    for shards in shard_counts:
        result = run_cluster_experiment(
            server,
            base.with_overrides(shards=shards, execution=EXEC_PROCESS),
            workload, seed=seed,
        )
        runs.append({
            "shards": result.shard_count,
            "workers": result.workers,
            "wall_seconds": result.wall_seconds,
            "busy_seconds": result.busy_seconds,
            "parallel_efficiency": result.parallel_efficiency,
            "speedup_vs_serial": (
                serial.wall_seconds / result.wall_seconds
                if result.wall_seconds > 0 else 0.0
            ),
            "bit_identical": result.metrics == serial.metrics,
        })
    return {
        "cells": cells,
        "nodes_per_cell": nodes_per_cell,
        "node_count": base.node_count,
        "offered_rate": rate,
        "duration_seconds": duration_seconds,
        "requests": serial.completed,
        "epochs": serial.epochs,
        "serial_wall_seconds": serial.wall_seconds,
        "fingerprint": _fingerprint(serial),
        "runs": runs,
    }


def bench_day(
    trace_path: str = GOLDEN_DAY_TRACE,
    *,
    cells: int = 2500,
    nodes_per_cell: int = 4,
    seed: int = 0,
) -> Optional[Dict[str, Any]]:
    """Replay the golden 24 h day against a 10k-node cluster.

    Traffic hashes across 2500 cells, so nearly every cell stays cold:
    the fluid model serves the long tail analytically and only hot
    cells pay for discrete-event simulation.  Returns ``None`` when the
    golden trace is not on disk (running outside the repository).
    """
    if not os.path.exists(trace_path):
        return None
    workload = Workload.replay(trace_path)
    cluster = ClusterConfig(
        cells=cells, nodes_per_cell=nodes_per_cell,
        fluid=True, fluid_hot_threshold=8, fluid_hot_window_seconds=1.0,
    )
    start = time.perf_counter()
    result = run_cluster_experiment(
        ServerConfig(), cluster, workload, seed=seed)
    wall = time.perf_counter() - start
    return {
        "trace": trace_path,
        "node_count": cluster.node_count,
        "cells": cells,
        "nodes_per_cell": nodes_per_cell,
        "issued": result.issued,
        "completed": result.completed,
        "fluid_served": result.fluid_served,
        "cells_touched": result.cells_touched,
        "epochs": result.epochs,
        "simulated_seconds": 86400.0,
        "wall_seconds": wall,
        "fingerprint": _fingerprint(result),
    }


def run_cluster_bench(smoke: bool = False) -> Dict[str, Any]:
    """Full harness; ``smoke=True`` shrinks the scaling probe for CI."""
    if smoke:
        scaling = bench_scaling(rate=300.0, duration_seconds=8.0)
    else:
        scaling = bench_scaling()
    return {
        "schema_version": SCHEMA_VERSION,
        "smoke": smoke,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": sys.platform,
            "cpu_count": os.cpu_count(),
        },
        "scaling": scaling,
        "day": bench_day(),
    }
