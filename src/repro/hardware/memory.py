"""GPU device-memory pool with eviction support.

Fig. 5's high-concurrency regime hinges on GPU memory: with GPU
preprocessing, every in-flight request parks a preprocessed tensor (plus
decode working set) in device memory while it waits for a batch slot.
When thousands of requests are in flight the pool saturates, queued
tensors are evicted to host memory over PCIe and reloaded before
inference — the paper's explanation for the throughput decline at very
high concurrency (Sec. 4.3).

The pool is a byte-level :class:`~repro.sim.containers.Container` plus an
eviction registry: holders of *evictable* allocations register a handle;
when an allocation cannot be satisfied, the pool evicts the oldest
evictable handles (caller performs the actual d2h transfer and marks the
handle) until the new allocation fits.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..kernel import Container, ExecutionBackend

__all__ = ["Allocation", "GpuMemoryPool", "OutOfMemoryError"]


class OutOfMemoryError(Exception):
    """Raised when an allocation exceeds the pool even when empty."""


class Allocation:
    """A live allocation in the pool."""

    __slots__ = (
        "pool", "nbytes", "evictable", "evicted", "released", "on_evict", "created_at", "tag",
    )

    def __init__(
        self,
        pool: "GpuMemoryPool",
        nbytes: float,
        evictable: bool,
        on_evict: Optional[Callable[["Allocation"], None]],
        tag: str = "request",
    ) -> None:
        self.pool = pool
        self.nbytes = nbytes
        self.evictable = evictable
        self.evicted = False
        self.released = False
        self.on_evict = on_evict
        self.created_at = pool.env.now
        #: Who owns the bytes ("request" working sets vs "cache" tensors);
        #: eviction sweeps account per tag so cache-vs-request memory
        #: contention is observable.
        self.tag = tag

    def __repr__(self) -> str:
        state = "evicted" if self.evicted else ("released" if self.released else "resident")
        return f"<Allocation {self.nbytes:.0f} B ({state})>"


class GpuMemoryPool:
    """Byte-accounting device-memory pool with oldest-first eviction."""

    def __init__(
        self,
        env: ExecutionBackend,
        capacity_bytes: float,
        name: str = "gpumem",
        evict_policy: str = "newest",
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        if evict_policy not in ("oldest", "newest"):
            raise ValueError(f"evict_policy must be 'oldest' or 'newest', got {evict_policy!r}")
        self.env = env
        self.name = name
        self.evict_policy = evict_policy
        self.capacity_bytes = capacity_bytes
        # Container level == free bytes.
        self._free = Container(env, capacity=capacity_bytes, init=capacity_bytes)
        self._evictable: List[Allocation] = []
        self.eviction_count = 0
        self.evicted_bytes = 0.0
        self.peak_used = 0.0
        #: Per-tag eviction accounting (e.g. "request" vs "cache").
        self.evictions_by_tag: Dict[str, int] = {}
        self.evicted_bytes_by_tag: Dict[str, float] = {}

    def __repr__(self) -> str:
        return f"<GpuMemoryPool {self.name} used={self.used_bytes:.2e}/{self.capacity_bytes:.2e}>"

    @property
    def free_bytes(self) -> float:
        return self._free.level

    @property
    def used_bytes(self) -> float:
        return self.capacity_bytes - self._free.level

    def alloc(
        self,
        nbytes: float,
        evictable: bool = False,
        on_evict: Optional[Callable[[Allocation], None]] = None,
        tag: str = "request",
    ) -> Generator:
        """Process generator: allocate ``nbytes``; returns an Allocation.

        If the pool is full, evicts the oldest evictable allocations
        (invoking their ``on_evict`` callbacks, which typically schedule a
        d2h write-back) and then waits until the bytes are free.

        Usage: ``allocation = yield from pool.alloc(n, evictable=True)``.
        """
        if nbytes < 0:
            raise ValueError(f"negative allocation {nbytes}")
        if nbytes > self.capacity_bytes:
            raise OutOfMemoryError(
                f"allocation of {nbytes:.2e} B exceeds pool capacity "
                f"{self.capacity_bytes:.2e} B"
            )

        # Evict until the request fits or nothing is left to evict; the
        # freed bytes arrive when the evictors release their allocations.
        if self.free_bytes < nbytes:
            self._evict_for(nbytes)

        yield self._free.get(nbytes)
        allocation = Allocation(self, nbytes, evictable, on_evict, tag=tag)
        if evictable:
            self._evictable.append(allocation)
        self.peak_used = max(self.peak_used, self.used_bytes)
        return allocation

    def try_alloc(
        self,
        nbytes: float,
        evictable: bool = False,
        on_evict: Optional[Callable[[Allocation], None]] = None,
        tag: str = "request",
    ) -> Optional[Allocation]:
        """Non-blocking allocate: returns None if it does not fit right now."""
        if nbytes < 0:
            raise ValueError(f"negative allocation {nbytes}")
        if self.free_bytes < nbytes:
            return None
        self._free.get(nbytes)  # succeeds immediately
        allocation = Allocation(self, nbytes, evictable, on_evict, tag=tag)
        if evictable:
            self._evictable.append(allocation)
        self.peak_used = max(self.peak_used, self.used_bytes)
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Release an allocation (idempotent)."""
        if allocation.released:
            return
        allocation.released = True
        if allocation in self._evictable:
            self._evictable.remove(allocation)
        self._free.put(allocation.nbytes)

    def pin(self, allocation: Allocation) -> None:
        """Make an evictable allocation non-evictable (about to be used)."""
        if allocation in self._evictable:
            self._evictable.remove(allocation)
        allocation.evictable = False

    def _evict_for(self, nbytes: float) -> None:
        """Kick out evictable allocations until ``nbytes`` would fit.

        ``newest`` policy (default) spills the most recently produced
        tensors: the ones furthest from their inference slot, which
        minimizes reloads on the critical path.  ``oldest`` is the naive
        FIFO spill, kept as an ablation (paper design-choice study).
        """
        needed = nbytes - self.free_bytes
        reclaimed = 0.0
        while reclaimed < needed and self._evictable:
            index = -1 if self.evict_policy == "newest" else 0
            victim = self._evictable.pop(index)
            victim.evicted = True
            self.eviction_count += 1
            self.evicted_bytes += victim.nbytes
            self.evictions_by_tag[victim.tag] = self.evictions_by_tag.get(victim.tag, 0) + 1
            self.evicted_bytes_by_tag[victim.tag] = (
                self.evicted_bytes_by_tag.get(victim.tag, 0.0) + victim.nbytes
            )
            reclaimed += victim.nbytes
            callback = victim.on_evict
            if callback is not None:
                callback(victim)
            # The victim's owner is responsible for freeing; do it here so
            # the bytes become available even if the owner is mid-transfer
            # (real stacks release pages once the write-back is enqueued).
            self.free(victim)
