"""Hardware cost models: CPU, GPU, PCIe, memory, power, composed platform."""

from .calibration import (
    DEFAULT_CALIBRATION,
    BrokerCalibration,
    Calibration,
    CpuCalibration,
    GpuCalibration,
    PcieCalibration,
    PowerCalibration,
)
from .cpu import Cpu
from .gpu import Gpu
from .memory import Allocation, GpuMemoryPool, OutOfMemoryError
from .pcie import D2H, H2D, PcieLink
from .platform import ServerNode
from .power import DeviceEnergy, EnergyMeter, EnergySnapshot

__all__ = [
    "Allocation",
    "BrokerCalibration",
    "Calibration",
    "Cpu",
    "CpuCalibration",
    "D2H",
    "DEFAULT_CALIBRATION",
    "DeviceEnergy",
    "EnergyMeter",
    "EnergySnapshot",
    "Gpu",
    "GpuCalibration",
    "GpuMemoryPool",
    "H2D",
    "OutOfMemoryError",
    "PcieCalibration",
    "PcieLink",
    "PowerCalibration",
    "ServerNode",
]
