"""Calibrated cost-model constants for the simulated serving platform.

The paper's testbed is a 13th-gen Intel i9-13900K plus an NVIDIA GeForce
RTX 4090 (paper Sec. 2.3, footnote 2).  Every constant below is either a
public datasheet number for that hardware or a value fitted so that the
*simulated* system reproduces a quantity the paper reports.  Each fitted
constant cites the paper observation it was calibrated against.

All units are SI: seconds, bytes, FLOPs, watts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "CpuCalibration",
    "GpuCalibration",
    "PcieCalibration",
    "PowerCalibration",
    "BrokerCalibration",
    "Calibration",
    "DEFAULT_CALIBRATION",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass(frozen=True)
class CpuCalibration:
    """Host CPU model (i9-13900K-like).

    The 13900K has 8 P-cores + 16 E-cores (32 threads).  We model it as a
    flat pool of ``cores`` equivalent cores; preprocessing scales with
    core count, which is what matters for the serving-level effects.
    """

    cores: int = 24

    # -- CPU JPEG decode + resize + normalize cost model -------------------
    # decode = entropy(bytes) + idct(pixels); resize ~ pixels_in;
    # normalize ~ pixels_out.  Fitted so that the zero-load preprocessing
    # share of a ViT request is ~56 % for the paper's medium image
    # (121 kB, 500x375) and ~97 % for the large image (9528 kB, 3564x2880)
    # with CPU preprocessing (paper Sec. 4.2 / Fig. 6).
    decode_seconds_per_byte: float = 2.0e-9  # ~0.5 GB/s entropy decode/core
    decode_seconds_per_pixel: float = 5.2e-9  # IDCT + colour convert
    resize_seconds_per_pixel: float = 2.8e-9  # bilinear, input-pixel bound
    normalize_seconds_per_pixel: float = 4.0e-9  # float conv + mean/std
    # Fixed per-request python-backend work (PIL/numpy wrapping, IPC).
    # Keeps the small image (4 kB, 60x70) CPU-preprocessing latency below
    # GPU preprocessing, as the paper observes (Sec. 4.2).
    request_overhead_seconds: float = 1.00e-3
    # Per-request frontend cost charged to *every* request regardless of
    # preprocessing device (gRPC receive, scheduling).
    frontend_overhead_seconds: float = 0.15e-3
    # Per-request response/postprocessing cost (argmax + serialize).
    response_overhead_seconds: float = 0.10e-3
    # -- frontend payload deserialization ----------------------------------
    # The gRPC/HTTP frontend parses every request body on one connection
    # thread.  Opaque compressed blobs (JPEG bytes) are passed through
    # nearly zero-copy; dense float tensors must be copied and laid out,
    # an order of magnitude slower.  This serialization is what caps the
    # raw-tensor inference-only ingest path of Fig. 7 (clients shipping
    # decoded images move ~5x more bytes per request).
    ingest_blob_bytes_per_second: float = 40e9
    ingest_tensor_bytes_per_second: float = 4e9


@dataclass(frozen=True)
class GpuCalibration:
    """GPU device model (RTX 4090-like)."""

    # Datasheet: RTX 4090 FP16 tensor throughput (dense) and GDDR6X BW.
    peak_flops: float = 82.6e12
    memory_bandwidth: float = 1008e9
    memory_bytes: float = 24 * GIB
    # Memory reserved for model weights, CUDA context, TensorRT workspace.
    reserved_bytes: float = 4 * GIB

    # -- batch-efficiency curve --------------------------------------------
    # Achievable fraction of peak_flops at batch B is
    #     eff(B) = efficiency_max * B / (B + efficiency_half_batch)
    # Fitted to: TensorRT ViT-base ~1.9 ms at batch 1 and >1600 img/s
    # end-to-end / ~2400 img/s inference-only at batch 64 (paper Fig. 3
    # and Fig. 7).
    efficiency_max: float = 0.60
    efficiency_half_batch: float = 3.5
    # Memory-path efficiency for memory-bound layers.
    memory_efficiency: float = 0.60
    # Per-inference-launch overhead, scaled per model by its layer count.
    kernel_launch_seconds: float = 5.0e-6

    # -- GPU (DALI/nvJPEG-style) preprocessing ------------------------------
    # Hybrid nvJPEG decode: a host *staging* stage (pinned-buffer copy +
    # bitstream parse + Huffman portion) followed by GPU kernels.
    # Staging rate fitted so that a single large image (9528 kB) costs
    # ~12 ms and the shared staging pool caps multi-GPU large-image
    # throughput at ~2x the single-GPU rate (paper Sec. 4.6 / Fig. 9).
    staging_seconds_per_byte: float = 1.25e-9  # 0.8 GB/s per host thread
    staging_threads: int = 8  # DALI host thread pool (shared across GPUs)
    # GPU decode+resize kernel cost per source pixel (batched, amortized).
    decode_seconds_per_pixel: float = 1.6e-10  # ~6 GPix/s batched
    # Fixed kernel-launch chain per preprocessing *call* (DALI pipeline
    # run).  Dominant at batch 1, which makes GPU preprocessing lose to
    # CPU at the paper's small image (Sec. 4.2) and puts the zero-load
    # medium-image GPU preprocessing share near the paper's 49 % (Fig. 6).
    preprocess_launch_seconds: float = 2.40e-3
    # Normalize/standardize kernels on the resized output (memory bound).
    normalize_seconds_per_pixel: float = 2.0e-11

    # -- dedicated hardware JPEG decode engine -------------------------------
    # The paper highlights "the inclusion of a dedicated hardware JPEG
    # decoder specifically for DNN preprocessing on modern GPUs such as
    # NVIDIA A100" (Sec. 2.2).  When enabled, JPEG decode runs on a
    # separate fixed-function engine (no SM contention) and the host
    # staging portion shrinks (the engine consumes the bitstream
    # directly; no hybrid CPU Huffman stage).
    hardware_jpeg_decoder: bool = False
    hw_decoder_seconds_per_pixel: float = 1.0e-10  # ~10 GPix/s engine
    hw_decoder_staging_factor: float = 0.3  # residual host staging share

    # Per in-flight request, GPU preprocessing parks
    #     (tensor_bytes + min(decoded_fp32_bytes, buffer_cap)) * multiplier
    # in device memory until inference consumes it (DALI sample buffers +
    # Triton ensemble intermediates + double buffering).  Governs the
    # high-concurrency GPU-memory eviction regime of Fig. 5: ~5.6 MB per
    # medium image means ~21.5 GB saturates between 2048 and 4096
    # outstanding requests, where the paper sees GPU preprocessing
    # throughput decline (Sec. 4.3).
    preprocess_footprint_multiplier: float = 2.2
    preprocess_buffer_cap_bytes: float = 8 * MIB
    # Which waiting tensor to spill when device memory fills: "newest"
    # (default; spills the tensor furthest from its inference slot) or
    # "oldest" (naive FIFO spill; ablation).
    eviction_policy: str = "newest"
    # Reloading a spilled working set is a pageable copy that blocks the
    # stream (spill buffers live in the pageable host heap) — the paper's
    # "subsequent reload ... incurs additional latency" (Sec. 4.3).


@dataclass(frozen=True)
class PcieCalibration:
    """Host <-> device interconnect (PCIe 4.0 x16).

    Transfers from *pinned* buffers (DALI staging pools, TensorRT-managed
    batch buffers) run at the full effective link rate.  Per-request
    transfers from *pageable* memory (raw tensors handed to the server by
    a client, Python-backend outputs) bounce through a driver staging
    copy and achieve far less — this asymmetry is what makes the
    inference-only configuration of Fig. 7 transfer-bound for fast models
    (the TinyViT outlier, paper Sec. 4.4).
    """

    bandwidth: float = 24e9  # pinned, effective, of 32 GB/s raw
    pageable_bandwidth: float = 4.5e9  # pageable-memory copies (driver staging)
    latency_seconds: float = 10e-6  # per-transfer submission latency


@dataclass(frozen=True)
class PowerCalibration:
    """Utilization-linear device power model.

    energy = integral of (idle + (peak - idle) * utilization) dt.
    Idle/peak from public i9-13900K / RTX 4090 measurements; shapes of
    Fig. 8 (CPU preprocessing costs more J/img; GPU-share shrinks when
    the GPU does both jobs) follow from busy-time integration.
    """

    cpu_idle_watts: float = 35.0
    cpu_peak_watts: float = 253.0  # PL2
    gpu_idle_watts: float = 22.0
    gpu_peak_watts: float = 450.0


@dataclass(frozen=True)
class BrokerCalibration:
    """Message-broker cost models (paper Sec. 4.7 / Fig. 11).

    Kafka is modelled as a disk-backed log: per-message produce cost plus
    a shared disk-bandwidth constraint.  Redis is an in-memory list with
    small per-op CPU costs.  Fitted against: Kafka consumes ~71 % and
    Redis ~6 % of zero-load latency at 25 faces/frame; Redis gives +125 %
    throughput (2.25x) over Kafka at 25 faces/frame; the fused pipeline
    wins below ~9 faces/frame.
    """

    # Kafka: synchronous produce round trip observed by the producer.
    kafka_produce_seconds: float = 1.1e-3
    # Broker-side CPU work per message (serialize, index, page-cache).
    kafka_broker_cpu_seconds: float = 0.10e-3
    # Consumer poll/deserialize per message.
    kafka_consume_seconds: float = 0.15e-3
    # Disk-backed log write bandwidth (every message body is appended).
    kafka_disk_bandwidth: float = 115e6
    # Consumer poll interval when the topic is empty.
    kafka_poll_interval_seconds: float = 1.0e-3

    # Redis: in-memory LPUSH/BRPOP round trip.
    redis_produce_seconds: float = 45e-6
    redis_consume_seconds: float = 20e-6
    redis_broker_cpu_seconds: float = 15e-6
    # Redis memory bandwidth is effectively unbounded at these rates but
    # modelled for completeness.
    redis_memory_bandwidth: float = 10e9

    # Fused pipeline: per-face synchronous identification dispatch cost
    # (no cross-frame batching, single CUDA stream).  Drives the fused
    # system's loss to Redis above ~9 faces/frame.
    fused_dispatch_seconds: float = 0.115e-3


@dataclass(frozen=True)
class Calibration:
    """Complete calibration bundle for one simulated platform."""

    cpu: CpuCalibration = field(default_factory=CpuCalibration)
    gpu: GpuCalibration = field(default_factory=GpuCalibration)
    pcie: PcieCalibration = field(default_factory=PcieCalibration)
    power: PowerCalibration = field(default_factory=PowerCalibration)
    broker: BrokerCalibration = field(default_factory=BrokerCalibration)

    def with_overrides(self, **kwargs) -> "Calibration":
        """Return a copy with top-level sections replaced."""
        return replace(self, **kwargs)


#: The calibration used by every experiment unless overridden.
DEFAULT_CALIBRATION = Calibration()
