"""Host CPU model: a pool of equivalent cores plus carved-out thread pools.

Preprocessing workers, server frontends, broker clients, and DALI staging
threads all burn host-CPU time.  The main ``cores`` pool is a shared
:class:`~repro.sim.resources.Resource`; auxiliary pools (e.g. the DALI
staging threads of :class:`~repro.hardware.gpu.Gpu` preprocessing) can be
carved out so their occupancy still counts toward CPU utilization and
energy.
"""

from __future__ import annotations

from typing import Generator, List

from ..kernel import ExecutionBackend, Resource
from .calibration import CpuCalibration

__all__ = ["Cpu"]


class Cpu:
    """A multicore host CPU."""

    def __init__(self, env: ExecutionBackend, calibration: CpuCalibration, name: str = "cpu") -> None:
        self.env = env
        self.name = name
        self.calibration = calibration
        self.cores = Resource(env, capacity=calibration.cores)
        #: Extra thread pools whose busy time belongs to this CPU.
        self._aux_pools: List[Resource] = []

    def __repr__(self) -> str:
        return f"<Cpu {self.name} ({self.cores.capacity} cores)>"

    @property
    def core_count(self) -> int:
        return self.cores.capacity

    def carve_pool(self, threads: int) -> Resource:
        """Create an auxiliary thread pool accounted to this CPU.

        The pool has its own capacity (it does not reduce ``cores``; real
        systems oversubscribe threads), but its busy time is included in
        :meth:`busy_time` so utilization/energy see it.
        """
        pool = Resource(self.env, capacity=threads)
        self._aux_pools.append(pool)
        return pool

    def run(self, seconds: float) -> Generator:
        """Process generator: occupy one core for ``seconds``.

        Usage: ``yield from cpu.run(dt)``.
        """
        if seconds < 0:
            raise ValueError(f"negative duration {seconds}")
        with self.cores.request() as grant:
            yield grant
            yield self.env.timeout(seconds)

    def busy_time(self) -> float:
        """Total core-busy seconds across the main pool and carve-outs."""
        total = self.cores.busy_time()
        for pool in self._aux_pools:
            total += pool.busy_time()
        return total

    def utilization(self, elapsed: float) -> float:
        """Average fraction of the core pool busy over ``elapsed`` seconds.

        Oversubscribed carve-outs can push this above 1; it is clamped
        because the power model saturates at full utilization.
        """
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time() / (self.core_count * elapsed))
