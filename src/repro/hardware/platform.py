"""The composed server node: one host CPU + N GPUs + shared staging pool.

This is the hardware object every experiment builds first.  It mirrors
the paper's testbed (one i9-13900K + one RTX 4090, Sec. 2.3) and its
multi-GPU extension (Sec. 4.6), where a *single* host CPU feeds up to
four GPUs and the shared host-side work becomes the scaling limit.
"""

from __future__ import annotations

from typing import List

from ..kernel import ExecutionBackend
from .calibration import DEFAULT_CALIBRATION, Calibration
from .cpu import Cpu
from .gpu import Gpu
from .power import EnergyMeter

__all__ = ["ServerNode"]


class ServerNode:
    """One physical server: host CPU, GPUs, DALI staging pool, energy meter."""

    def __init__(
        self,
        env: ExecutionBackend,
        calibration: Calibration = DEFAULT_CALIBRATION,
        gpu_count: int = 1,
    ) -> None:
        if gpu_count < 1:
            raise ValueError(f"gpu_count must be >= 1, got {gpu_count}")
        self.env = env
        self.calibration = calibration
        self.cpu = Cpu(env, calibration.cpu)
        self.gpus: List[Gpu] = [Gpu(env, calibration, index=i) for i in range(gpu_count)]
        # DALI-style host staging threads: one pool shared by every GPU's
        # preprocessing pipelines (the Sec. 4.6 multi-GPU bottleneck).
        self.staging = self.cpu.carve_pool(calibration.gpu.staging_threads)
        # Frontend payload-deserialization threads (gRPC parsing is
        # serialized per connection; load generators open one connection
        # per GPU-worth of offered load, so the pool scales with GPUs).
        self.ingest = self.cpu.carve_pool(gpu_count)

        self.energy = EnergyMeter()
        power = calibration.power
        self.energy.register(
            "cpu",
            self.cpu.busy_time,
            capacity=self.cpu.core_count,
            idle_watts=power.cpu_idle_watts,
            peak_watts=power.cpu_peak_watts,
        )
        for gpu in self.gpus:
            self.energy.register(
                gpu.name,
                gpu.busy_time,
                capacity=1,
                idle_watts=power.gpu_idle_watts,
                peak_watts=power.gpu_peak_watts,
            )

    def __repr__(self) -> str:
        return f"<ServerNode cpu={self.cpu.core_count}c gpus={len(self.gpus)}>"

    @property
    def gpu_count(self) -> int:
        return len(self.gpus)

    def gpu_energy_names(self) -> List[str]:
        return [gpu.name for gpu in self.gpus]
