"""PCIe interconnect model.

Each GPU hangs off its own PCIe 4.0 x16 link with independent
host-to-device (h2d) and device-to-host (d2h) DMA engines — transfers in
opposite directions overlap, transfers in the same direction serialize
and share the link bandwidth.  A transfer costs a fixed submission
latency plus bytes / bandwidth.

The paper leans on this model twice: the TinyViT outlier of Fig. 7
(inference-only moves ~5x more bytes than end-to-end because it ships
decoded rather than compressed images) and the energy accounting of
Fig. 8 (PCIe transfers charged to the host).
"""

from __future__ import annotations

from typing import Generator

from ..kernel import ExecutionBackend, Resource
from .calibration import PcieCalibration

__all__ = ["PcieLink", "H2D", "D2H"]

H2D = "h2d"
D2H = "d2h"


class PcieLink:
    """One full-duplex PCIe link with per-direction DMA engines."""

    def __init__(self, env: ExecutionBackend, calibration: PcieCalibration, name: str = "pcie") -> None:
        self.env = env
        self.name = name
        self.bandwidth = calibration.bandwidth
        self.pageable_bandwidth = calibration.pageable_bandwidth
        self.latency = calibration.latency_seconds
        self._engines = {
            H2D: Resource(env, capacity=1),
            D2H: Resource(env, capacity=1),
        }
        self.bytes_moved = {H2D: 0.0, D2H: 0.0}
        self.transfer_count = {H2D: 0, D2H: 0}
        #: Fault-injection hook (:class:`~repro.faults.health.DeviceHealth`);
        #: ``None`` on the healthy path so fault-free runs pay nothing.
        self.health = None

    def __repr__(self) -> str:
        return f"<PcieLink {self.name} ({self.bandwidth / 1e9:.0f} GB/s)>"

    def transfer_seconds(self, nbytes: float, pinned: bool = True) -> float:
        """Wire time of one transfer, excluding queueing.

        Pageable (non-pinned) transfers bounce through a driver staging
        copy and run at ``pageable_bandwidth``.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        rate = self.bandwidth if pinned else self.pageable_bandwidth
        return self.latency + nbytes / rate

    def transfer(self, nbytes: float, direction: str, pinned: bool = True) -> Generator:
        """Process generator: move ``nbytes`` in ``direction``.

        Usage from a process: ``yield from link.transfer(n, H2D)``.
        """
        engine = self._direction_engine(direction)
        with engine.request() as grant:
            yield grant
            seconds = self.transfer_seconds(nbytes, pinned)
            if self.health is not None:
                yield from self.health.gate()
                if self.health.bandwidth_factor != 1.0:
                    # Throttling scales the wire (bandwidth) term only;
                    # submission latency is unaffected.
                    seconds = self.latency + (seconds - self.latency) / self.health.bandwidth_factor
            yield self.env.timeout(seconds)
        self.bytes_moved[direction] += nbytes
        self.transfer_count[direction] += 1

    def busy_time(self, direction: str) -> float:
        """Accumulated DMA-engine busy seconds for ``direction``."""
        return self._direction_engine(direction).busy_time()

    def _direction_engine(self, direction: str) -> Resource:
        try:
            return self._engines[direction]
        except KeyError:
            raise ValueError(f"direction must be {H2D!r} or {D2H!r}, got {direction!r}") from None
