"""GPU device model.

A :class:`Gpu` owns:

- a serialized **compute** engine (kernels from preprocessing and
  inference share it — the contention the paper highlights when the GPU
  does both jobs, Sec. 4.3/4.4);
- a **memory pool** (:class:`~repro.hardware.memory.GpuMemoryPool`) sized
  to the device minus reserved weights/workspace;
- its own **PCIe link** to the host.

Kernel executions are modelled as exclusive holds on the compute engine
for their modelled duration.  Multiple serving *instances* (CUDA streams)
may overlap submission, but the engine serializes actual execution,
which is the throughput-accurate abstraction for a saturated device.
"""

from __future__ import annotations

from typing import Generator

from ..kernel import ExecutionBackend, PriorityResource
from .calibration import Calibration
from .memory import GpuMemoryPool
from .pcie import PcieLink

__all__ = ["Gpu", "PRIORITY_PREPROCESS", "PRIORITY_INFERENCE"]

#: Preprocessing (ensemble step 1 / DALI) kernels are many small
#: launches that slot in ahead of the long inference GEMM chains; giving
#: them scheduling priority reproduces the step-1 run-ahead that fills
#: GPU memory at very high concurrency (paper Sec. 4.3).
PRIORITY_PREPROCESS = 0
PRIORITY_INFERENCE = 1


class Gpu:
    """One GPU device with compute engine, memory pool, and PCIe link."""

    def __init__(self, env: ExecutionBackend, calibration: Calibration, index: int = 0) -> None:
        self.env = env
        self.calibration = calibration
        self.index = index
        self.name = f"gpu{index}"
        self.compute = PriorityResource(env, capacity=1)
        usable = calibration.gpu.memory_bytes - calibration.gpu.reserved_bytes
        self.memory = GpuMemoryPool(
            env, usable, name=f"{self.name}.mem",
            evict_policy=calibration.gpu.eviction_policy,
        )
        self.link = PcieLink(env, calibration.pcie, name=f"{self.name}.pcie")
        # Fixed-function JPEG decode engine (A100-class GPUs): decode
        # runs here instead of on the SMs when enabled.
        self.decoder = (
            PriorityResource(env, capacity=1)
            if calibration.gpu.hardware_jpeg_decoder
            else None
        )
        self.kernel_count = 0
        #: Fault-injection hook (:class:`~repro.faults.health.DeviceHealth`);
        #: ``None`` on the healthy path so fault-free runs pay nothing.
        self.health = None

    def __repr__(self) -> str:
        return f"<Gpu {self.name}>"

    def execute(self, seconds: float, priority: int = PRIORITY_INFERENCE) -> Generator:
        """Process generator: run a kernel (chain) of ``seconds`` duration.

        Usage: ``yield from gpu.execute(dt)``.
        """
        if seconds < 0:
            raise ValueError(f"negative kernel duration {seconds}")
        with self.compute.request(priority=priority) as grant:
            yield grant
            if self.health is not None:
                yield from self.health.gate()
                seconds *= self.health.slowdown
            yield self.env.timeout(seconds)
        self.kernel_count += 1

    def decode(self, seconds: float) -> Generator:
        """Process generator: run work on the hardware decode engine.

        Falls back to the compute engine when the device has no
        dedicated decoder.  Usage: ``yield from gpu.decode(dt)``.
        """
        if seconds < 0:
            raise ValueError(f"negative decode duration {seconds}")
        engine = self.decoder if self.decoder is not None else self.compute
        with engine.request(priority=PRIORITY_PREPROCESS) as grant:
            yield grant
            if self.health is not None:
                yield from self.health.gate()
                seconds *= self.health.slowdown
            yield self.env.timeout(seconds)

    def busy_time(self) -> float:
        """Accumulated compute-engine busy seconds."""
        return self.compute.busy_time()

    def utilization(self, elapsed: float) -> float:
        """Average compute utilization over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time() / elapsed)
