"""Utilization-integrated energy accounting (paper Sec. 4.5 / Fig. 8).

Each device reports cumulative *busy time*; the meter converts busy-time
deltas over a measurement window into energy with a linear power model:

    E = P_idle * T + (P_peak - P_idle) * busy_time / capacity

Snapshots make warm-up exclusion exact: take one snapshot when the
measurement window opens and one when it closes, and diff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

__all__ = ["DeviceEnergy", "EnergyMeter", "EnergySnapshot"]


@dataclass(frozen=True)
class DeviceEnergy:
    """Energy use of one device over a window."""

    name: str
    window_seconds: float
    busy_seconds: float
    utilization: float
    idle_joules: float
    dynamic_joules: float

    @property
    def total_joules(self) -> float:
        return self.idle_joules + self.dynamic_joules


@dataclass(frozen=True)
class EnergySnapshot:
    """Busy-time counters of every registered device at one instant."""

    at_time: float
    busy: Dict[str, float]


class EnergyMeter:
    """Tracks registered devices and integrates their energy over windows."""

    def __init__(self) -> None:
        # name -> (busy_time_fn, capacity, idle_watts, peak_watts)
        self._devices: Dict[str, Tuple[Callable[[], float], float, float, float]] = {}

    def register(
        self,
        name: str,
        busy_time_fn: Callable[[], float],
        capacity: float,
        idle_watts: float,
        peak_watts: float,
    ) -> None:
        """Register a device by its cumulative busy-time function.

        ``capacity`` is the number of parallel execution slots the busy
        time is measured against (cores for a CPU, 1 for a GPU engine).
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if peak_watts < idle_watts:
            raise ValueError("peak power below idle power")
        if name in self._devices:
            raise ValueError(f"device {name!r} already registered")
        self._devices[name] = (busy_time_fn, capacity, idle_watts, peak_watts)

    @property
    def device_names(self):
        return sorted(self._devices)

    def snapshot(self, now: float) -> EnergySnapshot:
        """Capture cumulative busy time of every device."""
        return EnergySnapshot(
            at_time=now,
            busy={name: fn() for name, (fn, _, _, _) in self._devices.items()},
        )

    def energy_between(self, start: EnergySnapshot, end: EnergySnapshot) -> Dict[str, DeviceEnergy]:
        """Per-device energy over the window between two snapshots."""
        window = end.at_time - start.at_time
        if window < 0:
            raise ValueError("end snapshot precedes start snapshot")
        report: Dict[str, DeviceEnergy] = {}
        for name, (_, capacity, idle_watts, peak_watts) in self._devices.items():
            busy = end.busy[name] - start.busy[name]
            utilization = 0.0 if window == 0 else min(1.0, busy / (capacity * window))
            report[name] = DeviceEnergy(
                name=name,
                window_seconds=window,
                busy_seconds=busy,
                utilization=utilization,
                idle_joules=idle_watts * window,
                dynamic_joules=(peak_watts - idle_watts) * utilization * window,
            )
        return report
