"""Workload image sources.

Experiments draw request images from a :class:`Dataset`: either one of the
paper's three reference images repeated (Sec. 4.2-4.6 sweep those), or an
ImageNet-like mixture whose dimension and file-size distribution matches
the published ImageNet statistics (average ~110 kB JPEG, typical ~500x375,
with a heavy tail of large photos).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence

from ..sim.rng import RandomStreams
from .image import Image, REFERENCE_IMAGES
from .jpeg import estimate_compressed_bytes

__all__ = [
    "Dataset",
    "FixedImageDataset",
    "MixtureDataset",
    "ImageNetLikeDataset",
    "VideoFrameDataset",
    "reference_dataset",
]


class Dataset:
    """Deterministic stream of request images."""

    name: str = "dataset"

    def sample(self, rng: random.Random) -> Image:
        """Draw the next image."""
        raise NotImplementedError

    def iterate(self, count: int, streams: RandomStreams) -> Iterator[Image]:
        """Yield ``count`` images using the dataset's own RNG stream."""
        rng = streams.stream(f"dataset:{self.name}")
        for _ in range(count):
            yield self.sample(rng)


class FixedImageDataset(Dataset):
    """Every request carries the same image (the paper's size sweeps)."""

    def __init__(self, image: Image) -> None:
        self.image = image
        self.name = f"fixed:{image.name or f'{image.width}x{image.height}'}"

    def sample(self, rng: random.Random) -> Image:
        return self.image


class MixtureDataset(Dataset):
    """Weighted mixture over a fixed set of images."""

    def __init__(self, images: Sequence[Image], weights: Optional[Sequence[float]] = None,
                 name: str = "mixture") -> None:
        if not images:
            raise ValueError("mixture needs at least one image")
        if weights is not None and len(weights) != len(images):
            raise ValueError("weights must match images")
        self.images: List[Image] = list(images)
        self.weights = list(weights) if weights is not None else None
        self.name = name

    def sample(self, rng: random.Random) -> Image:
        if self.weights is None:
            return rng.choice(self.images)
        return rng.choices(self.images, weights=self.weights, k=1)[0]


class ImageNetLikeDataset(Dataset):
    """Synthetic ImageNet-validation-like size distribution.

    Dimensions: most images ~500x375 +/- jitter; a small heavy tail of
    multi-megapixel photos.  File size follows the JPEG bpp estimate.
    Statistics chosen to match public ImageNet summaries (mean file
    ~110 kB, median dims 500x375).
    """

    name = "imagenet-like"

    #: (min_width, max_width, aspect, weight) buckets.
    _BUCKETS = [
        (60, 160, 0.9, 0.03),  # tiny thumbnails (paper's small image regime)
        (300, 640, 0.75, 0.87),  # typical validation images
        (800, 1600, 0.75, 0.08),  # large photos
        (2000, 3600, 0.80, 0.02),  # multi-megapixel tail
    ]

    def sample(self, rng: random.Random) -> Image:
        buckets = self._BUCKETS
        weights = [b[3] for b in buckets]
        lo, hi, aspect, _ = rng.choices(buckets, weights=weights, k=1)[0]
        width = rng.randint(lo, hi)
        height = max(16, int(width * aspect * rng.uniform(0.8, 1.2)))
        quality = rng.randint(75, 92)
        return Image(
            width=width,
            height=height,
            compressed_bytes=estimate_compressed_bytes(width, height, quality),
            name="imagenet-like",
        )


class VideoFrameDataset(Dataset):
    """Fixed-resolution decoded video frames (face-pipeline input).

    The multi-DNN experiment (Sec. 4.7) feeds camera frames; we model
    1080p frames compressed at streaming quality.
    """

    def __init__(self, width: int = 1920, height: int = 1080, quality: int = 80) -> None:
        self.name = f"video:{width}x{height}"
        self._frame = Image(
            width=width,
            height=height,
            compressed_bytes=estimate_compressed_bytes(width, height, quality),
            name="frame",
        )

    def sample(self, rng: random.Random) -> Image:
        return self._frame


def reference_dataset(size: str) -> FixedImageDataset:
    """Dataset for one of the paper's reference sizes (small/medium/large)."""
    if size not in REFERENCE_IMAGES:
        raise KeyError(f"unknown reference size {size!r}; expected one of {sorted(REFERENCE_IMAGES)}")
    return FixedImageDataset(REFERENCE_IMAGES[size])
