"""Workload image sources.

Experiments draw request images from a :class:`Dataset`: either one of the
paper's three reference images repeated (Sec. 4.2-4.6 sweep those), or an
ImageNet-like mixture whose dimension and file-size distribution matches
the published ImageNet statistics (average ~110 kB JPEG, typical ~500x375,
with a heavy tail of large photos).
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Iterator, List, Optional, Sequence

from ..sim.rng import RandomStreams
from .image import Image, REFERENCE_IMAGES
from .jpeg import estimate_compressed_bytes

__all__ = [
    "Dataset",
    "FixedImageDataset",
    "MixtureDataset",
    "ImageNetLikeDataset",
    "VideoFrameDataset",
    "ZipfDataset",
    "reference_dataset",
]


class Dataset:
    """Deterministic stream of request images."""

    name: str = "dataset"

    def sample(self, rng: random.Random) -> Image:
        """Draw the next image."""
        raise NotImplementedError

    def iterate(self, count: int, streams: RandomStreams) -> Iterator[Image]:
        """Yield ``count`` images using the dataset's own RNG stream."""
        rng = streams.stream(f"dataset:{self.name}")
        for _ in range(count):
            yield self.sample(rng)


class FixedImageDataset(Dataset):
    """Every request carries the same image (the paper's size sweeps)."""

    def __init__(self, image: Image) -> None:
        self.image = image
        self.name = f"fixed:{image.name or f'{image.width}x{image.height}'}"

    def sample(self, rng: random.Random) -> Image:
        return self.image


class MixtureDataset(Dataset):
    """Weighted mixture over a fixed set of images."""

    def __init__(self, images: Sequence[Image], weights: Optional[Sequence[float]] = None,
                 name: str = "mixture") -> None:
        if not images:
            raise ValueError("mixture needs at least one image")
        if weights is not None and len(weights) != len(images):
            raise ValueError("weights must match images")
        self.images: List[Image] = list(images)
        self.weights = list(weights) if weights is not None else None
        self.name = name

    def sample(self, rng: random.Random) -> Image:
        if self.weights is None:
            return rng.choice(self.images)
        return rng.choices(self.images, weights=self.weights, k=1)[0]


class ImageNetLikeDataset(Dataset):
    """Synthetic ImageNet-validation-like size distribution.

    Dimensions: most images ~500x375 +/- jitter; a small heavy tail of
    multi-megapixel photos.  File size follows the JPEG bpp estimate.
    Statistics chosen to match public ImageNet summaries (mean file
    ~110 kB, median dims 500x375).
    """

    name = "imagenet-like"

    #: (min_width, max_width, aspect, weight) buckets.
    _BUCKETS = [
        (60, 160, 0.9, 0.03),  # tiny thumbnails (paper's small image regime)
        (300, 640, 0.75, 0.87),  # typical validation images
        (800, 1600, 0.75, 0.08),  # large photos
        (2000, 3600, 0.80, 0.02),  # multi-megapixel tail
    ]

    def sample(self, rng: random.Random) -> Image:
        buckets = self._BUCKETS
        weights = [b[3] for b in buckets]
        lo, hi, aspect, _ = rng.choices(buckets, weights=weights, k=1)[0]
        width = rng.randint(lo, hi)
        height = max(16, int(width * aspect * rng.uniform(0.8, 1.2)))
        quality = rng.randint(75, 92)
        return Image(
            width=width,
            height=height,
            compressed_bytes=estimate_compressed_bytes(width, height, quality),
            name="imagenet-like",
        )


class VideoFrameDataset(Dataset):
    """Fixed-resolution decoded video frames (face-pipeline input).

    The multi-DNN experiment (Sec. 4.7) feeds camera frames; we model
    1080p frames compressed at streaming quality.
    """

    def __init__(self, width: int = 1920, height: int = 1080, quality: int = 80) -> None:
        self.name = f"video:{width}x{height}"
        self.width = width
        self.height = height
        self.quality = quality
        self._frame = Image(
            width=width,
            height=height,
            compressed_bytes=estimate_compressed_bytes(width, height, quality),
            name="frame",
        )

    def sample(self, rng: random.Random) -> Image:
        return self._frame


class ZipfDataset(Dataset):
    """Zipf-popularity wrapper: a finite catalog with skewed request mix.

    Production request streams are not unique-image streams: a small set
    of popular images accounts for most requests (Zipf-like popularity).
    This wrapper materializes a ``catalog_size`` catalog by drawing from
    ``base`` once (deterministically, from ``seed`` — independent of the
    per-run request RNG, so the catalog is identical across runs and
    reusable between experiments), stamps every member with a content
    identity, and samples rank ``k`` with probability proportional to
    ``1 / k**skew``.

    ``skew=0`` is uniform popularity; ``skew=1`` is the classic web-
    traffic fit; larger values concentrate traffic further.  This is the
    workload that makes the content-addressed caches in
    :mod:`repro.cache` earn their keep.
    """

    def __init__(
        self,
        base: Dataset,
        catalog_size: int,
        skew: float = 1.0,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> None:
        if catalog_size < 1:
            raise ValueError(f"catalog_size must be >= 1, got {catalog_size}")
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        self.base = base
        self.catalog_size = catalog_size
        self.skew = skew
        self.seed = seed
        self.name = name or f"zipf:{base.name}:n{catalog_size}:s{skew:g}"
        catalog_rng = random.Random(f"{self.name}:{seed}")
        self.catalog: List[Image] = [
            base.sample(catalog_rng).with_content_id(f"{self.name}:{seed}#{k}")
            for k in range(catalog_size)
        ]
        weights = [1.0 / (k + 1) ** skew for k in range(catalog_size)]
        self._cumulative = list(itertools.accumulate(weights))

    def weight(self, rank: int) -> float:
        """Request probability of the rank-``rank`` item (1-indexed)."""
        if not 1 <= rank <= self.catalog_size:
            raise ValueError(f"rank must be in [1, {self.catalog_size}], got {rank}")
        total = self._cumulative[-1]
        return (1.0 / rank**self.skew) / total

    def top_fraction(self, top_n: int) -> float:
        """Traffic share of the ``top_n`` most popular items — the
        asymptotic hit rate of a cache holding exactly those items."""
        if top_n < 1:
            return 0.0
        top_n = min(top_n, self.catalog_size)
        return self._cumulative[top_n - 1] / self._cumulative[-1]

    def sample_index(self, rng: random.Random) -> int:
        """Draw a catalog index (rank - 1) from the Zipf popularity.

        Exposed so trace synthesis can record *which* catalog item each
        request hit (replay maps the index straight back); one
        ``rng.random()`` draw, identical to :meth:`sample`.
        """
        u = rng.random() * self._cumulative[-1]
        index = bisect.bisect_right(self._cumulative, u)
        return min(index, self.catalog_size - 1)

    def sample(self, rng: random.Random) -> Image:
        return self.catalog[self.sample_index(rng)]


def reference_dataset(size: str) -> FixedImageDataset:
    """Dataset for one of the paper's reference sizes (small/medium/large)."""
    if size not in REFERENCE_IMAGES:
        raise KeyError(f"unknown reference size {size!r}; expected one of {sorted(REFERENCE_IMAGES)}")
    return FixedImageDataset(REFERENCE_IMAGES[size])
