"""Image substrate: descriptors, JPEG cost model, preprocessing ops, datasets."""

from .datasets import (
    Dataset,
    FixedImageDataset,
    ImageNetLikeDataset,
    MixtureDataset,
    VideoFrameDataset,
    ZipfDataset,
    reference_dataset,
)
from .image import LARGE_IMAGE, MEDIUM_IMAGE, REFERENCE_IMAGES, SMALL_IMAGE, Image, Tensor
from .jpeg import (
    CpuDecodeCost,
    GpuDecodeCost,
    cpu_decode_cost,
    estimate_compressed_bytes,
    gpu_decode_cost,
)
from .video import (
    FrameSample,
    Video,
    VideoClipDataset,
    VideoDecodeCost,
    keyframe_sample_indices,
    uniform_sample_indices,
    video_decode_cost,
)
from .ops import (
    CpuPreprocessCost,
    GpuPreprocessCost,
    cpu_preprocess_cost,
    gpu_preprocess_cost,
    model_input_tensor,
)

__all__ = [
    "CpuDecodeCost",
    "CpuPreprocessCost",
    "Dataset",
    "FixedImageDataset",
    "GpuDecodeCost",
    "GpuPreprocessCost",
    "Image",
    "ImageNetLikeDataset",
    "LARGE_IMAGE",
    "MEDIUM_IMAGE",
    "MixtureDataset",
    "REFERENCE_IMAGES",
    "SMALL_IMAGE",
    "Tensor",
    "Video",
    "VideoClipDataset",
    "VideoDecodeCost",
    "VideoFrameDataset",
    "ZipfDataset",
    "FrameSample",
    "keyframe_sample_indices",
    "uniform_sample_indices",
    "video_decode_cost",
    "cpu_decode_cost",
    "cpu_preprocess_cost",
    "estimate_compressed_bytes",
    "gpu_decode_cost",
    "gpu_preprocess_cost",
    "model_input_tensor",
    "reference_dataset",
]
