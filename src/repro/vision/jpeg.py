"""JPEG codec *cost* model.

A JPEG decode has two qualitatively different phases:

- **entropy (Huffman) decode** — inherently sequential, cost proportional
  to the *compressed byte count*;
- **dequantize + IDCT + upsample + colour convert** — parallel, cost
  proportional to the *pixel count*.

CPU decoders (libjpeg-turbo) run both phases on a core.  GPU decoders
(nvJPEG in hybrid mode, as used by DALI on consumer GPUs) keep a host-side
*staging* portion (buffer copy, bitstream parse, Huffman start) and move
the pixel-parallel portion to GPU kernels.  This module converts an
:class:`~repro.vision.image.Image` into phase durations using the platform
:class:`~repro.hardware.calibration.Calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.calibration import Calibration
from .image import Image

__all__ = ["CpuDecodeCost", "GpuDecodeCost", "cpu_decode_cost", "gpu_decode_cost", "estimate_compressed_bytes"]


@dataclass(frozen=True)
class CpuDecodeCost:
    """Durations of a full CPU JPEG decode for one image."""

    entropy_seconds: float
    pixel_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.entropy_seconds + self.pixel_seconds


@dataclass(frozen=True)
class GpuDecodeCost:
    """Durations of a hybrid (host staging + GPU kernels) decode."""

    staging_seconds: float  # on a DALI host thread
    kernel_seconds: float  # on the GPU, excludes per-batch launch overhead

    @property
    def total_seconds(self) -> float:
        return self.staging_seconds + self.kernel_seconds


def cpu_decode_cost(image: Image, calibration: Calibration) -> CpuDecodeCost:
    """Cost of decoding ``image`` on one CPU core."""
    cpu = calibration.cpu
    return CpuDecodeCost(
        entropy_seconds=image.compressed_bytes * cpu.decode_seconds_per_byte,
        pixel_seconds=image.pixels * cpu.decode_seconds_per_pixel,
    )


def gpu_decode_cost(image: Image, calibration: Calibration) -> GpuDecodeCost:
    """Cost of decoding ``image`` with the hybrid GPU decoder."""
    gpu = calibration.gpu
    return GpuDecodeCost(
        staging_seconds=image.compressed_bytes * gpu.staging_seconds_per_byte,
        kernel_seconds=image.pixels * gpu.decode_seconds_per_pixel,
    )


def estimate_compressed_bytes(width: int, height: int, quality: int = 85) -> int:
    """Estimate the JPEG size of a photographic image.

    Uses the standard bits-per-pixel rule of thumb for baseline JPEG:
    ~1.5 bpp at quality 75, rising roughly linearly to ~4 bpp at
    quality 95.  Used by the synthetic dataset samplers; the paper's
    three reference images carry their exact measured sizes instead.
    """
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    bits_per_pixel = 0.5 + 0.035 * quality
    size = int(width * height * bits_per_pixel / 8)
    return max(size, 256)  # headers put a floor on real JPEG sizes
