"""Image descriptors used throughout the serving simulator.

The simulator never touches pixel values: preprocessing cost depends only
on an image's *compressed byte size* and *pixel dimensions* (entropy decode
scales with bytes, IDCT/resize with pixels), so an :class:`Image` is a
lightweight descriptor of those properties.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["Image", "Tensor", "SMALL_IMAGE", "MEDIUM_IMAGE", "LARGE_IMAGE", "REFERENCE_IMAGES"]


@dataclass(frozen=True)
class Image:
    """A compressed (JPEG) image as received by the server."""

    width: int
    height: int
    compressed_bytes: int
    name: str = ""
    #: Content identity (e.g. a digest of the bytes in a real system).
    #: Empty means "unique content": the caching subsystem never caches
    #: or matches such images.  Datasets with a finite catalog stamp it.
    content_id: str = ""

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"invalid dimensions {self.width}x{self.height}")
        if self.compressed_bytes <= 0:
            raise ValueError(f"invalid compressed size {self.compressed_bytes}")

    def with_content_id(self, content_id: str) -> "Image":
        """Copy of this image stamped with a content identity."""
        return replace(self, content_id=content_id)

    @property
    def pixels(self) -> int:
        """Number of pixels in the source image."""
        return self.width * self.height

    @property
    def decoded_bytes(self) -> int:
        """Size of the decoded RGB888 image."""
        return self.pixels * 3

    @property
    def compression_ratio(self) -> float:
        """Decoded bytes per compressed byte."""
        return self.decoded_bytes / self.compressed_bytes

    def __str__(self) -> str:
        label = self.name or "image"
        return f"{label}({self.width}x{self.height}, {self.compressed_bytes} B)"


@dataclass(frozen=True)
class Tensor:
    """A dense DNN input/output tensor (descriptor only)."""

    shape: tuple
    dtype_bytes: int = 4  # float32 by default

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("tensor must have at least one dimension")
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"invalid shape {self.shape}")
        if self.dtype_bytes <= 0:
            raise ValueError(f"invalid dtype size {self.dtype_bytes}")

    @property
    def elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        return self.elements * self.dtype_bytes

    def with_batch(self, batch: int) -> "Tensor":
        """Return this tensor with a leading batch dimension of ``batch``."""
        return Tensor((batch,) + tuple(self.shape), self.dtype_bytes)


# The paper's three reference ImageNet images (Sec. 4.2, footnote 3):
#   Small:  4 kB,    60x70
#   Medium: 121 kB,  500x375
#   Large:  9528 kB, 3564x2880
SMALL_IMAGE = Image(width=60, height=70, compressed_bytes=4 * 1024, name="small",
                    content_id="ref:small")
MEDIUM_IMAGE = Image(width=500, height=375, compressed_bytes=121 * 1024, name="medium",
                     content_id="ref:medium")
LARGE_IMAGE = Image(width=3564, height=2880, compressed_bytes=9528 * 1024, name="large",
                    content_id="ref:large")

REFERENCE_IMAGES = {
    "small": SMALL_IMAGE,
    "medium": MEDIUM_IMAGE,
    "large": LARGE_IMAGE,
}
