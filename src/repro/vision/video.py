"""Compressed-video cost models (the paper's motivating scenario).

The paper's introduction motivates serving overheads with video: "a
video classification service receives the video in a compressed format
like MPEG, decodes the video, samples a number of frames, then resizes
and normalizes the resulting images into the format required by the
DNN" (Sec. 1).  This module models that substrate:

- a :class:`Video` descriptor (resolution, frame rate, duration,
  bitrate, GOP structure);
- the cost of decoding up to a sampled frame: inter-coded video cannot
  be random-accessed, so sampling frame *k* requires decoding from the
  preceding keyframe — the structural reason sparse sampling is *not*
  proportionally cheaper than dense sampling;
- sampling policies (uniform, keyframe-aligned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..hardware.calibration import Calibration
from .image import Image

__all__ = ["Video", "FrameSample", "VideoDecodeCost", "uniform_sample_indices",
           "keyframe_sample_indices", "video_decode_cost"]


@dataclass(frozen=True)
class Video:
    """A compressed (H.264/MPEG-like) video clip."""

    width: int
    height: int
    fps: float
    duration_seconds: float
    bitrate_bps: float  # compressed bits per second
    gop_frames: int = 48  # keyframe interval
    name: str = ""

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"invalid dimensions {self.width}x{self.height}")
        if self.fps <= 0 or self.duration_seconds <= 0:
            raise ValueError("fps and duration must be positive")
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        if self.gop_frames < 1:
            raise ValueError("gop_frames must be >= 1")

    @property
    def frame_count(self) -> int:
        return max(1, int(self.fps * self.duration_seconds))

    @property
    def pixels_per_frame(self) -> int:
        return self.width * self.height

    @property
    def compressed_bytes(self) -> int:
        return int(self.bitrate_bps * self.duration_seconds / 8)

    @property
    def bytes_per_frame(self) -> float:
        return self.compressed_bytes / self.frame_count

    def frame_as_image(self, index: int = 0) -> Image:
        """A decoded frame viewed as an image (for per-frame preprocessing)."""
        return Image(
            width=self.width,
            height=self.height,
            compressed_bytes=max(256, int(self.bytes_per_frame)),
            name=f"{self.name or 'video'}[{index}]",
        )


@dataclass(frozen=True)
class FrameSample:
    """One sampled frame and the decode work needed to reach it."""

    index: int
    keyframe_index: int

    @property
    def frames_to_decode(self) -> int:
        """Frames that must be decoded from the preceding keyframe."""
        return self.index - self.keyframe_index + 1


@dataclass(frozen=True)
class VideoDecodeCost:
    """CPU decode cost of reaching a set of sampled frames."""

    sampled_frames: int
    decoded_frames: int  # includes GOP lead-in frames
    entropy_seconds: float
    pixel_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.entropy_seconds + self.pixel_seconds

    @property
    def amplification(self) -> float:
        """Decoded frames per sampled frame (the GOP tax)."""
        if self.sampled_frames == 0:
            return 0.0
        return self.decoded_frames / self.sampled_frames


def uniform_sample_indices(video: Video, count: int) -> List[FrameSample]:
    """Sample ``count`` frames evenly across the clip."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    total = video.frame_count
    count = min(count, total)
    step = total / count
    samples = []
    for i in range(count):
        index = min(total - 1, int(i * step + step / 2))
        keyframe = (index // video.gop_frames) * video.gop_frames
        samples.append(FrameSample(index=index, keyframe_index=keyframe))
    return samples


def keyframe_sample_indices(video: Video, count: int) -> List[FrameSample]:
    """Sample ``count`` frames aligned to keyframes (cheap random access)."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    keyframes = list(range(0, video.frame_count, video.gop_frames))
    count = min(count, len(keyframes))
    step = len(keyframes) / count
    picked = [keyframes[min(len(keyframes) - 1, int(i * step))] for i in range(count)]
    return [FrameSample(index=k, keyframe_index=k) for k in picked]


def video_decode_cost(
    video: Video,
    samples: List[FrameSample],
    calibration: Calibration,
) -> VideoDecodeCost:
    """CPU cost of decoding the GOP spans covering ``samples``.

    Within one GOP, overlapping sample lead-ins are decoded once (a real
    decoder caches the GOP it is positioned in).
    """
    cpu = calibration.cpu
    decoded = 0
    seen_gop_progress = {}  # keyframe -> highest frame already decoded
    for sample in sorted(samples, key=lambda s: s.index):
        already = seen_gop_progress.get(sample.keyframe_index)
        if already is None:
            decoded += sample.frames_to_decode
        elif sample.index > already:
            decoded += sample.index - already
        seen_gop_progress[sample.keyframe_index] = max(
            seen_gop_progress.get(sample.keyframe_index, -1), sample.index
        )

    entropy = decoded * video.bytes_per_frame * cpu.decode_seconds_per_byte
    # Inter-frame reconstruction (motion comp) is cheaper per pixel than
    # a full JPEG IDCT; 0.6x is the standard ratio for P-frames.
    pixels = decoded * video.pixels_per_frame
    pixel_seconds = pixels * cpu.decode_seconds_per_pixel * 0.6
    return VideoDecodeCost(
        sampled_frames=len(samples),
        decoded_frames=decoded,
        entropy_seconds=entropy,
        pixel_seconds=pixel_seconds,
    )


class VideoClipDataset:
    """Deterministic stream of video clips for load generation.

    Mirrors :class:`repro.vision.datasets.Dataset` but yields
    :class:`Video` objects; duration jitter models real clip mixes.
    """

    def __init__(
        self,
        width: int = 1280,
        height: int = 720,
        fps: float = 30.0,
        mean_duration_seconds: float = 8.0,
        bitrate_bps: float = 4e6,
        gop_frames: int = 48,
        name: str = "clips",
    ) -> None:
        if mean_duration_seconds <= 0:
            raise ValueError("mean duration must be positive")
        self.name = name
        self._template = dict(
            width=width, height=height, fps=fps,
            bitrate_bps=bitrate_bps, gop_frames=gop_frames,
        )
        self._mean_duration = mean_duration_seconds

    def sample(self, rng) -> Video:
        duration = max(1.0, rng.uniform(0.5, 1.5) * self._mean_duration)
        return Video(duration_seconds=duration, name=self.name, **self._template)
