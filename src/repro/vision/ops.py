"""Cost models for the non-decode preprocessing operators.

The paper's preprocessing pipeline is *JPEG decode -> resize -> normalize*
(Sec. 4).  Decode costs live in :mod:`repro.vision.jpeg`; this module
prices resize and normalize, and composes the full per-image
preprocessing cost on either device.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.calibration import Calibration
from .image import Image, Tensor
from .jpeg import cpu_decode_cost, gpu_decode_cost

__all__ = [
    "CpuPreprocessCost",
    "GpuPreprocessCost",
    "cpu_resize_seconds",
    "cpu_normalize_seconds",
    "gpu_resize_normalize_seconds",
    "cpu_preprocess_cost",
    "gpu_preprocess_cost",
    "model_input_tensor",
]


def model_input_tensor(input_size: int, dtype_bytes: int = 4) -> Tensor:
    """The DNN input tensor for a square ``input_size`` model (CHW)."""
    return Tensor((3, input_size, input_size), dtype_bytes)


def cpu_resize_seconds(image: Image, calibration: Calibration) -> float:
    """Bilinear resize on one CPU core (input-pixel bound for downscale)."""
    return image.pixels * calibration.cpu.resize_seconds_per_pixel


def cpu_normalize_seconds(input_size: int, calibration: Calibration) -> float:
    """uint8 -> float conversion + mean/std normalization of the output."""
    output_pixels = input_size * input_size * 3
    return output_pixels * calibration.cpu.normalize_seconds_per_pixel


def gpu_resize_normalize_seconds(image: Image, input_size: int, calibration: Calibration) -> float:
    """Fused resize+normalize GPU kernel time (memory bound).

    Reads the decoded source pixels and writes the normalized output; both
    are priced per pixel at the calibrated kernel rate.
    """
    output_pixels = input_size * input_size * 3
    gpu = calibration.gpu
    return (
        image.pixels * gpu.decode_seconds_per_pixel * 0.25  # resize pass reads source
        + output_pixels * gpu.normalize_seconds_per_pixel
    )


@dataclass(frozen=True)
class CpuPreprocessCost:
    """Full CPU preprocessing cost of one image, split by phase."""

    request_overhead_seconds: float
    decode_seconds: float
    resize_seconds: float
    normalize_seconds: float

    @property
    def core_seconds(self) -> float:
        """Time the image occupies one CPU core."""
        return (
            self.request_overhead_seconds
            + self.decode_seconds
            + self.resize_seconds
            + self.normalize_seconds
        )

    total_seconds = core_seconds


@dataclass(frozen=True)
class GpuPreprocessCost:
    """Full GPU (DALI-style) preprocessing cost of one image.

    ``staging_seconds`` runs on a host staging thread;
    ``decode_kernel_seconds`` is JPEG decode (SMs, or the fixed-function
    engine on A100-class devices) and ``postprocess_kernel_seconds`` is
    the resize/normalize chain (always SMs).  The per-*batch*
    launch-chain overhead (``calibration.gpu.preprocess_launch_seconds``)
    is charged once per preprocessing call by the pipeline, not here.
    """

    staging_seconds: float
    decode_kernel_seconds: float
    postprocess_kernel_seconds: float

    @property
    def kernel_seconds(self) -> float:
        return self.decode_kernel_seconds + self.postprocess_kernel_seconds

    @property
    def total_seconds(self) -> float:
        return self.staging_seconds + self.kernel_seconds


def cpu_preprocess_cost(image: Image, input_size: int, calibration: Calibration) -> CpuPreprocessCost:
    """Price decode+resize+normalize for one image on one CPU core."""
    decode = cpu_decode_cost(image, calibration)
    return CpuPreprocessCost(
        request_overhead_seconds=calibration.cpu.request_overhead_seconds,
        decode_seconds=decode.total_seconds,
        resize_seconds=cpu_resize_seconds(image, calibration),
        normalize_seconds=cpu_normalize_seconds(input_size, calibration),
    )


def gpu_preprocess_cost(image: Image, input_size: int, calibration: Calibration) -> GpuPreprocessCost:
    """Price staging + decode/resize/normalize kernels for one image."""
    gpu = calibration.gpu
    decode = gpu_decode_cost(image, calibration)
    staging = decode.staging_seconds
    decode_kernel = decode.kernel_seconds
    if gpu.hardware_jpeg_decoder:
        # The fixed-function engine consumes the bitstream directly:
        # less host staging, and its own per-pixel rate.
        staging *= gpu.hw_decoder_staging_factor
        decode_kernel = image.pixels * gpu.hw_decoder_seconds_per_pixel
    return GpuPreprocessCost(
        staging_seconds=staging,
        decode_kernel_seconds=decode_kernel,
        postprocess_kernel_seconds=gpu_resize_normalize_seconds(image, input_size, calibration),
    )
