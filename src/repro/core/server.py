"""The throughput-optimized inference server (Triton-like, paper Sec. 2).

One :class:`InferenceServer` deploys one model on a
:class:`~repro.hardware.platform.ServerNode` under a
:class:`~repro.core.config.ServerConfig` and serves
:class:`~repro.core.request.InferenceRequest` objects end to end:

    frontend -> preprocessing (CPU workers | per-GPU DALI pipelines)
             -> dynamic batcher -> inference instances -> response

Every stage charges time to the devices it occupies (CPU cores, DALI
staging threads, GPU compute engines, PCIe DMA engines, GPU memory), so
throughput, latency breakdowns, queueing, eviction behaviour, and energy
all *emerge* from resource contention rather than being computed in
closed form.

Stage-isolation modes reproduce Fig. 7: ``preprocess_only`` stops after
preprocessing; ``inference_only`` accepts ready tensors from the client
(paying the ~5x larger pageable raw-tensor transfer the paper
root-causes the TinyViT anomaly to).
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional

from ..cache.tiers import CacheEntry, CacheHierarchy
from ..hardware.gpu import Gpu, PRIORITY_INFERENCE, PRIORITY_PREPROCESS
from ..hardware.pcie import D2H, H2D
from ..hardware.platform import ServerNode
from ..models.dnn import inference_latency
from ..models.runtimes import RuntimeSpec, get_runtime
from ..models.zoo import ModelSpec, get_model
from ..kernel import Event, ExecutionBackend, Resource
from ..vision.image import Image
from ..vision.ops import cpu_preprocess_cost, gpu_preprocess_cost
from .batcher import DynamicBatcher
from .config import (
    CPU_PREPROCESS,
    GPU_PREPROCESS,
    MODE_END_TO_END,
    MODE_INFERENCE_ONLY,
    MODE_PREPROCESS_ONLY,
    ServerConfig,
)
from .metrics import MetricsCollector
from .request import (
    SPAN_FRONTEND,
    SPAN_INFERENCE,
    SPAN_POSTPROCESS,
    SPAN_PREPROCESS,
    SPAN_PREPROCESS_WAIT,
    SPAN_QUEUE,
    SPAN_TRANSFER,
    InferenceRequest,
)

__all__ = ["InferenceServer", "BatchEntry"]


def _output_bytes(model: ModelSpec) -> float:
    """Response payload size by task (what crosses PCIe back to the host)."""
    if model.task == "classification":
        return 1000 * 4  # logits
    if model.task == "segmentation":
        return model.input_size * model.input_size  # argmax'd class map
    if model.task == "depth":
        return model.input_size * model.input_size * 4  # float depth map
    if model.task == "detection":
        return 16 * 1024  # boxes + scores + masks metadata
    if model.task == "embedding":
        return 512 * 4
    return 4 * 1024


class BatchEntry:
    """One request flowing through the batcher with its tensor state."""

    __slots__ = ("request", "allocation", "evicted", "gpu", "cache_entry")

    def __init__(self, request: InferenceRequest, gpu: Optional[Gpu]) -> None:
        self.request = request
        self.allocation = None  # GPU Allocation once the tensor is device-resident
        self.evicted = False
        self.gpu = gpu
        #: Tensor-cache entry backing this request (tensor-tier hit); the
        #: cached allocation belongs to the cache, not the request.
        self.cache_entry: Optional[CacheEntry] = None


class InferenceServer:
    """A single-model, single-node serving deployment."""

    def __init__(
        self,
        env: ExecutionBackend,
        node: ServerNode,
        config: ServerConfig,
        metrics: Optional[MetricsCollector] = None,
        on_complete: Optional[Callable[[InferenceRequest], None]] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.config = config
        self.calibration = node.calibration
        self.model: ModelSpec = get_model(config.model)
        self.runtime: RuntimeSpec = get_runtime(config.runtime)
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.on_complete = on_complete

        #: Internal DNN input tensor bytes (fp16 CHW, matching the
        #: TensorRT engines' precision).
        self.tensor_bytes = self.model.input_size * self.model.input_size * 3 * 2
        #: Raw tensor bytes as shipped by an inference-only client
        #: (decoded fp32 image — the "~5x larger" payload of Sec. 4.4).
        self.raw_tensor_bytes = self.model.input_size * self.model.input_size * 3 * 4
        self.output_bytes = _output_bytes(self.model)

        self._rr = itertools.cycle(range(node.gpu_count))
        self._cpu_workers = Resource(env, capacity=config.preprocess_workers)

        # One inference batcher per GPU (tensors become device-resident).
        self._batchers: List[DynamicBatcher] = [
            DynamicBatcher(
                env,
                max_batch=config.max_batch_size,
                max_queue_delay=config.max_queue_delay_seconds,
                output_capacity=config.inference_instances,
                name=f"infer-batcher-gpu{i}",
            )
            for i in range(node.gpu_count)
        ]
        # One preprocessing batcher + pipeline per GPU for DALI-style
        # GPU preprocessing.
        self._preproc_batchers: List[DynamicBatcher] = []
        if self._uses_gpu_preprocessing:
            for i, gpu in enumerate(node.gpus):
                batcher = DynamicBatcher(
                    env,
                    max_batch=config.preprocess_batch_size,
                    max_queue_delay=config.preprocess_queue_delay_seconds,
                    output_capacity=config.preprocess_pipelines,
                    name=f"preproc-batcher-gpu{i}",
                    greedy=False,  # DALI waits for its preferred batch
                )
                self._preproc_batchers.append(batcher)
                for _ in range(config.preprocess_pipelines):
                    env.process(self._gpu_preprocess_pipeline(gpu, batcher))

        if config.mode != MODE_PREPROCESS_ONLY:
            for i, gpu in enumerate(node.gpus):
                for _ in range(config.inference_instances):
                    env.process(self._inference_instance(gpu, self._batchers[i]))

        #: Content-aware cache hierarchy (``None`` = caching disabled;
        #: the request path is then bit-identical to pre-cache builds).
        #: Caching only applies to the full pipeline: the stage-isolation
        #: modes exist to measure raw stage costs, not to be optimized.
        self.cache: Optional[CacheHierarchy] = None
        if (
            config.cache is not None
            and config.cache.enabled
            and config.cache.any_tier_enabled
            and config.mode == MODE_END_TO_END
        ):
            self.cache = CacheHierarchy(env, config.cache, node.gpus)

        # Diagnostics
        self.eviction_reloads = 0

        #: Optional :class:`~repro.telemetry.tracer.Tracer`; when set,
        #: submitted requests are armed for timestamped span recording.
        #: Attachment is purely observational — the request path draws
        #: no randomness and schedules no events on its behalf.
        self.tracer = None

    def __repr__(self) -> str:
        return (
            f"<InferenceServer {self.model.name}/{self.runtime.name} "
            f"preproc={self.config.preprocess_device} mode={self.config.mode}>"
        )

    def drain(self):
        """Event: gracefully drain every batcher (see
        :meth:`~repro.core.batcher.DynamicBatcher.drain`).

        Succeeds once all preprocessing and inference batchers have
        flushed their queues as (partial) batches.  Live serving calls
        this on shutdown so admitted requests complete instead of being
        dropped; callers impose a deadline with ``yield drain() |
        env.timeout(grace)``.
        """
        drains = [b.drain() for b in self._batchers]
        drains.extend(b.drain() for b in self._preproc_batchers)
        return self.env.all_of(drains)

    @property
    def _uses_gpu_preprocessing(self) -> bool:
        return (
            self.config.preprocess_device == GPU_PREPROCESS
            and self.config.mode in (MODE_END_TO_END, MODE_PREPROCESS_ONLY)
        )

    def register_metrics(self, registry) -> None:
        """Publish server state as registry views (observation only).

        Every instrument is callback-backed over counters the server
        maintains anyway, so registration cannot perturb the run.
        """
        self.metrics.register_metrics(registry)
        registry.counter_fn(
            "repro_eviction_reloads_total",
            "Evicted/stale tensors reloaded from host memory",
            lambda: self.eviction_reloads,
        )
        for index, batcher in enumerate(self._batchers):
            registry.gauge_fn(
                "repro_batch_queue_depth",
                "Requests waiting in the inference batcher",
                lambda b=batcher: b.queue.size,
                gpu=str(index),
            )
            registry.counter_fn(
                "repro_batches_dispatched_total",
                "Batches handed to inference instances",
                lambda b=batcher: b.dispatched_batches,
                gpu=str(index),
            )
            registry.counter_fn(
                "repro_batch_items_total",
                "Requests dispatched inside batches",
                lambda b=batcher: b.dispatched_items,
                gpu=str(index),
            )
        for gpu in self.node.gpus:
            registry.gauge_fn(
                "repro_gpu_memory_used_bytes",
                "GPU memory pool bytes in use",
                lambda g=gpu: g.memory.used_bytes,
                gpu=str(gpu.index),
            )
            registry.gauge_fn(
                "repro_gpu_memory_peak_bytes",
                "High-water mark of the GPU memory pool",
                lambda g=gpu: g.memory.peak_used,
                gpu=str(gpu.index),
            )
        if self.cache is not None:
            self.cache.register_metrics(registry)

    # -- public API ----------------------------------------------------------

    def submit(
        self,
        image: Image,
        arrival_time: Optional[float] = None,
        deadline: Optional[float] = None,
        attempt: int = 0,
        phase: Optional[str] = None,
        trace=None,
    ) -> Event:
        """Submit one request; the returned event succeeds at completion
        with the finished :class:`InferenceRequest` as its value.

        ``arrival_time`` lets a load balancer backdate the request to
        when it entered the datacenter, so balancer queueing counts
        toward end-to-end latency.  ``deadline`` (absolute simulation
        time) marks the request as a timeout if it completes at or past
        it; ``attempt`` is the retry index stamped by resilient callers;
        ``phase`` is the workload phase the arrival was issued under
        (stamped onto the request for per-phase metrics and traces);
        ``trace`` is the distributed
        :class:`~repro.telemetry.context.TraceContext` hop propagated
        from the caller (fabric message or HTTP ``traceparent``).
        """
        request = InferenceRequest(
            image,
            arrival_time=self.env.now if arrival_time is None else arrival_time,
            deadline=deadline,
            attempt=attempt,
            phase=phase,
        )
        request.trace = trace
        if self.tracer is not None:
            self.tracer.register(request)
        done = self.env.event()
        self.env.process(self._handle(request, done))
        return done

    # -- cache keys ------------------------------------------------------------

    def _tensor_key(self, image: Image) -> str:
        """Tensor-tier key: content resized for *this* model's input."""
        if not image.content_id:
            return ""
        return f"{image.content_id}@{self.model.input_size}"

    def _result_key(self, image: Image) -> str:
        """Result-tier key: content inferred by *this* model+runtime."""
        if not image.content_id:
            return ""
        return f"{image.content_id}@{self.model.name}/{self.runtime.name}"

    # -- request driver --------------------------------------------------------

    def _handle(self, request: InferenceRequest, done: Event):
        cpu = self.node.cpu
        calib = self.calibration.cpu

        request.begin(SPAN_FRONTEND, self.env.now)
        yield from cpu.run(calib.frontend_overhead_seconds)
        # Payload deserialization on the (serialized) connection thread:
        # raw tensors are ~5x the compressed bytes and must be copied and
        # laid out, so the inference-only ingest path is far slower.
        if self.config.mode == MODE_INFERENCE_ONLY:
            parse_seconds = self.raw_tensor_bytes / calib.ingest_tensor_bytes_per_second
        else:
            parse_seconds = (
                request.image.compressed_bytes / calib.ingest_blob_bytes_per_second
            )
        with self.node.ingest.request() as grant:
            yield grant
            yield self.env.timeout(parse_seconds)
        request.end(SPAN_FRONTEND, self.env.now)

        # Exact-duplicate short-circuit: a cached inference result skips
        # preprocessing, transfer, and the DNN entirely.
        if self.cache is not None:
            if self.cache.lookup_result(self._result_key(request.image)) is not None:
                request.served_from = "result"
                yield from self._finalize(request, done)
                return

        gpu_index = next(self._rr)
        request.gpu_index = gpu_index
        gpu = self.node.gpus[gpu_index]

        mode = self.config.mode
        if mode == MODE_INFERENCE_ONLY:
            yield from self._ingest_raw_tensor(request, gpu, done)
            return

        # Preprocessed tensor already resident in this GPU's pool: skip
        # decode/resize/normalize *and* the H2D copy; straight to batching.
        if self.cache is not None:
            tensor_entry = self.cache.lookup_tensor(gpu_index, self._tensor_key(request.image))
            if tensor_entry is not None:
                request.served_from = "tensor"
                entry = BatchEntry(request, gpu)
                entry.cache_entry = tensor_entry
                request.begin(SPAN_QUEUE, self.env.now)
                yield self._batchers[gpu_index].submit((entry, done))
                return

        if self.config.preprocess_device == CPU_PREPROCESS:
            yield from self._cpu_preprocess(request, gpu, done)
        else:
            # Hand off to the per-GPU DALI pipeline.
            entry = BatchEntry(request, gpu)
            request.begin(SPAN_PREPROCESS_WAIT, self.env.now)
            yield self._preproc_batchers[gpu_index].submit((entry, done))

    def _cpu_preprocess(self, request: InferenceRequest, gpu: Gpu, done: Event):
        """Python-backend preprocessing on host cores."""
        cost = cpu_preprocess_cost(request.image, self.model.input_size, self.calibration)
        core_seconds = cost.core_seconds
        image_hit = False
        if self.cache is not None:
            if self.cache.lookup_image(request.image.content_id) is not None:
                # Decoded pixels cached in host RAM: skip the JPEG decode,
                # pay only request overhead + resize + normalize.
                image_hit = True
                request.served_from = "image"
                core_seconds -= cost.decode_seconds
        request.begin(SPAN_PREPROCESS_WAIT, self.env.now)
        with self._cpu_workers.request() as worker:
            yield worker
            request.end(SPAN_PREPROCESS_WAIT, self.env.now)
            request.begin(SPAN_PREPROCESS, self.env.now)
            yield from self.node.cpu.run(core_seconds)
            request.end(SPAN_PREPROCESS, self.env.now)
        if self.cache is not None and not image_hit:
            self.cache.admit_image(request.image.content_id, request.image.decoded_bytes)

        if self.config.mode == MODE_PREPROCESS_ONLY:
            yield from self._finalize(request, done)
            return

        # Tensor stays in (pageable) host memory; the inference instance
        # moves the whole batch to the GPU at dispatch time.
        entry = BatchEntry(request, None)
        request.begin(SPAN_QUEUE, self.env.now)
        yield self._batchers[request.gpu_index].submit((entry, done))

    def _ingest_raw_tensor(self, request: InferenceRequest, gpu: Gpu, done: Event):
        """Inference-only mode: the client ships the decoded tensor.

        The raw tensor is ~5x larger than the compressed image and
        arrives in pageable memory, so ingest pays a slow per-request
        PCIe copy (the Fig. 7 TinyViT root cause).
        """
        request.begin(SPAN_TRANSFER, self.env.now)
        yield from gpu.link.transfer(self.raw_tensor_bytes, H2D, pinned=False)
        request.end(SPAN_TRANSFER, self.env.now)

        entry = BatchEntry(request, gpu)
        entry.allocation = yield from gpu.memory.alloc(
            self.raw_tensor_bytes,
            evictable=self.config.allow_eviction,
            on_evict=lambda alloc, e=entry: self._on_evict(e),
        )
        request.begin(SPAN_QUEUE, self.env.now)
        yield self._batchers[request.gpu_index].submit((entry, done))

    # -- GPU (DALI) preprocessing pipeline --------------------------------------

    def _resident_bytes(self, image: Image) -> float:
        """Device-memory footprint parked per request awaiting inference."""
        gpu_cal = self.calibration.gpu
        decoded_fp32 = image.pixels * 3 * 4
        capped = min(decoded_fp32, gpu_cal.preprocess_buffer_cap_bytes)
        return (self.tensor_bytes + capped) * gpu_cal.preprocess_footprint_multiplier

    def _gpu_preprocess_pipeline(self, gpu: Gpu, batcher: DynamicBatcher):
        """One DALI-style pipeline: staged, batched, GPU-executed."""
        gpu_cal = self.calibration.gpu
        staging = self.node.staging
        while True:
            batch = yield batcher.next_batch()
            entries = [entry for entry, _ in batch]
            now = self.env.now
            for entry in entries:
                entry.request.end(SPAN_PREPROCESS_WAIT, now)
                entry.request.begin(SPAN_PREPROCESS, now)

            # Decoded-image cache hits skip host staging and the decode
            # kernel, but ship *decoded* pixels over PCIe instead of the
            # (smaller) JPEG bitstream.
            cached_entries = set()
            if self.cache is not None:
                for entry in entries:
                    if self.cache.lookup_image(entry.request.image.content_id) is not None:
                        cached_entries.add(entry)
                        entry.request.served_from = "image"

            # 1. Host staging: each sample needs a staging thread for its
            #    pinned copy + bitstream parse (pool shared across GPUs).
            stage_jobs = [
                self.env.process(self._stage_sample(staging, entry))
                for entry in entries
                if entry not in cached_entries
            ]
            if stage_jobs:
                yield self.env.all_of(stage_jobs)
            now = self.env.now
            for entry in entries:
                entry.request.end(SPAN_PREPROCESS, now)

            # 2. Batch payload to the GPU in one pinned batched copy.
            compressed = sum(
                entry.request.image.decoded_bytes
                if entry in cached_entries
                else entry.request.image.compressed_bytes
                for entry in entries
            )
            transfer_start = self.env.now
            yield from gpu.link.transfer(compressed, H2D, pinned=True)
            transfer_time = self.env.now - transfer_start
            now = self.env.now
            for entry in entries:
                entry.request.add(SPAN_TRANSFER, transfer_time, now=now)
                entry.request.begin(SPAN_PREPROCESS, now)

            # 3. Device memory for every sample's working set (evictable
            #    while it waits for an inference slot).
            for entry in entries:
                entry.allocation = yield from gpu.memory.alloc(
                    self._resident_bytes(entry.request.image),
                    evictable=self.config.allow_eviction,
                    on_evict=lambda alloc, e=entry: self._on_evict(e),
                )

            # 4. Decode, then resize/normalize kernel chains.  On devices
            #    with a fixed-function JPEG engine the decode portion runs
            #    there, leaving the SMs to inference (the A100 design the
            #    paper cites in Sec. 2.2).
            decode_time = 0.0
            kernel_time = gpu_cal.preprocess_launch_seconds
            for entry in entries:
                cost = gpu_preprocess_cost(
                    entry.request.image, self.model.input_size, self.calibration
                )
                if entry not in cached_entries:
                    decode_time += cost.decode_kernel_seconds
                kernel_time += cost.postprocess_kernel_seconds
            if gpu.decoder is not None:
                yield from gpu.decode(decode_time)
            else:
                kernel_time += decode_time
            yield from gpu.execute(kernel_time, priority=PRIORITY_PREPROCESS)

            now = self.env.now
            for entry in entries:
                entry.request.end(SPAN_PREPROCESS, now)
            if self.cache is not None:
                # Freshly decoded pixels become image-tier candidates (the
                # host write-back is assumed off the critical path).
                for entry in entries:
                    if entry not in cached_entries:
                        self.cache.admit_image(
                            entry.request.image.content_id,
                            entry.request.image.decoded_bytes,
                        )

            if self.config.mode == MODE_PREPROCESS_ONLY:
                for entry, done in batch:
                    gpu.memory.free(entry.allocation)
                    self.env.process(self._finalize_proc(entry.request, done))
                continue

            for entry, done in batch:
                entry.request.begin(SPAN_QUEUE, self.env.now)
                yield self._batchers[gpu.index].submit((entry, done))

    def _stage_sample(self, staging, entry: BatchEntry):
        """Occupy one staging thread for the sample's host-side work."""
        cost = gpu_preprocess_cost(entry.request.image, self.model.input_size, self.calibration)
        with staging.request() as grant:
            yield grant
            yield self.env.timeout(cost.staging_seconds)

    def _on_evict(self, entry: BatchEntry) -> None:
        """Pool callback: the entry's tensor was pushed out to host memory."""
        entry.evicted = True
        entry.allocation = None
        entry.request.eviction_count += 1
        gpu = entry.gpu if entry.gpu is not None else self.node.gpus[entry.request.gpu_index]
        # Asynchronous write-back of the resized tensor to host memory.
        self.env.process(self._writeback(gpu))

    def _writeback(self, gpu: Gpu):
        yield from gpu.link.transfer(self.tensor_bytes, D2H, pinned=True)

    # -- inference instances -------------------------------------------------------

    def _inference_instance(self, gpu: Gpu, batcher: DynamicBatcher):
        """One model instance (CUDA stream) bound to ``gpu``."""
        while True:
            batch = yield batcher.next_batch()
            entries = [entry for entry, _ in batch]
            now = self.env.now
            for entry in entries:
                entry.request.end(SPAN_QUEUE, now)
                entry.request.batch_size = len(entries)

            yield from self._materialize_inputs(gpu, entries)

            # DNN execution.
            latency = inference_latency(
                self.model, self.runtime, len(entries), self.calibration
            )
            now = self.env.now
            for entry in entries:
                entry.request.begin(SPAN_INFERENCE, now)
            yield from gpu.execute(latency)
            now = self.env.now
            for entry in entries:
                entry.request.end(SPAN_INFERENCE, now)

            # Results back to the host (pageable response buffers).
            out_start = self.env.now
            yield from gpu.link.transfer(len(entries) * self.output_bytes, D2H, pinned=False)
            out_time = self.env.now - out_start
            for entry in entries:
                entry.request.add(SPAN_TRANSFER, out_time, now=self.env.now)
                if entry.allocation is not None:
                    gpu.memory.free(entry.allocation)
                    entry.allocation = None
            if self.cache is not None:
                # The input tensor is the natural tensor-tier candidate:
                # the working set was just freed, so the (smaller) fp16
                # tensor is admitted if the pool has bytes to spare.
                for entry in entries:
                    if entry.cache_entry is None:
                        self.cache.admit_tensor(
                            gpu.index,
                            self._tensor_key(entry.request.image),
                            self.tensor_bytes,
                        )

            for entry, done in batch:
                self.env.process(self._finalize_proc(entry.request, done))

    def _materialize_inputs(self, gpu: Gpu, entries: List[BatchEntry]):
        """Ensure every entry's tensor is resident on ``gpu``."""
        host_entries = [
            e for e in entries if e.gpu is None and e.allocation is None and e.cache_entry is None
        ]
        if host_entries:
            # CPU-preprocessed batch: one gathered copy from the python
            # backend's pageable output buffers.  cudaMemcpyAsync from
            # pageable memory degrades to a synchronous copy, so the
            # transfer also blocks the compute stream — a key reason GPU
            # preprocessing outperforms CPU preprocessing under load.
            nbytes = len(host_entries) * self.tensor_bytes
            start = self.env.now
            with gpu.compute.request(priority=PRIORITY_INFERENCE) as grant:
                yield grant
                yield from gpu.link.transfer(nbytes, H2D, pinned=False)
            end = self.env.now
            elapsed = end - start
            for entry in host_entries:
                entry.request.add(SPAN_TRANSFER, elapsed, now=end)
                entry.allocation = yield from gpu.memory.alloc(self.tensor_bytes)

        # GPU-preprocessed / inference-only path: pin survivors, reload
        # evicted tensors from host memory.  Tensor-cache hits whose
        # entry was pushed out of the pool between lookup and dispatch
        # fall back to the same host reload (paying tensor_bytes).
        evicted = [e for e in entries if e.evicted]
        stale = [
            e for e in entries if e.cache_entry is not None and not e.cache_entry.resident
        ]
        for entry in entries:
            if entry.allocation is not None:
                gpu.memory.pin(entry.allocation)
        if evicted or stale:
            # Spilled working sets live in the pageable host heap, so the
            # reload is a synchronous copy that blocks the stream — the
            # paper's "subsequent reload ... incurs additional latency".
            self.eviction_reloads += len(evicted) + len(stale)
            nbytes = sum(self._resident_bytes(e.request.image) for e in evicted)
            nbytes += len(stale) * self.tensor_bytes
            start = self.env.now
            with gpu.compute.request(priority=PRIORITY_INFERENCE) as grant:
                yield grant
                yield from gpu.link.transfer(nbytes, H2D, pinned=False)
            end = self.env.now
            elapsed = end - start
            for entry in evicted:
                entry.request.add(SPAN_TRANSFER, elapsed, now=end)
                entry.allocation = yield from gpu.memory.alloc(
                    self._resident_bytes(entry.request.image)
                )
                entry.evicted = False
            for entry in stale:
                entry.request.add(SPAN_TRANSFER, elapsed, now=end)
                entry.allocation = yield from gpu.memory.alloc(self.tensor_bytes)
                entry.cache_entry = None

    # -- completion -------------------------------------------------------------

    def _finalize_proc(self, request: InferenceRequest, done: Event):
        yield from self._finalize(request, done)

    def _finalize(self, request: InferenceRequest, done: Event):
        request.begin(SPAN_POSTPROCESS, self.env.now)
        yield from self.node.cpu.run(self.calibration.cpu.response_overhead_seconds)
        request.end(SPAN_POSTPROCESS, self.env.now)
        request.complete(self.env.now)
        if self.cache is not None and request.served_from != "result":
            self.cache.admit_result(self._result_key(request.image), self.output_bytes)
        self.metrics.record(request)
        if self.on_complete is not None:
            self.on_complete(request)
        done.succeed(request)
