"""Serving metrics: throughput, latency statistics, span breakdowns.

A :class:`MetricsCollector` is armed for a measurement window (after
warm-up) and fed every completed request; it produces the quantities the
paper reports: throughput (img/s), average and tail latency, and the
per-span latency breakdown (preprocess / queue / transfer / inference /
...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .request import ALL_SPANS, OUTCOME_OK, InferenceRequest

__all__ = ["LatencyStats", "MetricsCollector", "RunMetrics", "percentile"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of pre-sorted values, q in [0, 100]."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100) * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    frac = rank - low
    # a + (b - a) * frac is exact when a == b (the naive weighted form
    # a*(1-frac) + b*frac can drift one ulp outside [a, b]).
    return sorted_values[low] + (sorted_values[high] - sorted_values[low]) * frac


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float

    @classmethod
    def empty(cls) -> "LatencyStats":
        """Zero-sample statistics (a window in which nothing succeeded)."""
        return cls(count=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, maximum=0.0)

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencyStats":
        if not values:
            raise ValueError("no latency samples")
        ordered = sorted(values)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 50),
            p90=percentile(ordered, 90),
            p99=percentile(ordered, 99),
            maximum=ordered[-1],
        )


@dataclass(frozen=True)
class RunMetrics:
    """Everything measured in one experiment window."""

    window_seconds: float
    completed: int
    throughput: float  # requests/second
    latency: LatencyStats
    span_means: Dict[str, float]  # mean seconds per span
    span_fractions: Dict[str, float]  # share of mean latency per span
    mean_batch_size: float
    eviction_count: int
    #: Every sampled request latency (sorted ascending), for post-hoc
    #: analysis: histograms, CDFs, SLO attainment.
    latencies: Tuple[float, ...] = ()
    extras: Dict[str, float] = field(default_factory=dict)
    #: Requests that completed past their deadline inside the window.
    timeout_count: int = 0
    #: Retry attempts issued inside the window (client or balancer).
    retry_count: int = 0
    #: Requests rejected by admission control inside the window.
    shed_count: int = 0
    #: Window-gated cache-hit counts per tier ("result", "tensor",
    #: "image"); empty when caching is disabled.  Run-global tier
    #: counters (evictions, bytes, rates) live in ``extras``.
    cache_hits: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "RunMetrics":
        """A window in which nothing completed (e.g. a live node shut
        down before serving any request)."""
        return cls(
            window_seconds=0.0,
            completed=0,
            throughput=0.0,
            latency=LatencyStats.empty(),
            span_means={},
            span_fractions={},
            mean_batch_size=0.0,
            eviction_count=0,
        )

    def latency_histogram(self, buckets: int = 10) -> List[Tuple[float, float, int]]:
        """Equal-width histogram of request latencies.

        Returns (bucket_low, bucket_high, count) triples spanning
        [min, max]; the last bucket is inclusive of the maximum.
        """
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        if not self.latencies:
            raise ValueError("no latencies recorded")
        lo = self.latencies[0]
        hi = self.latencies[-1]
        if hi <= lo:
            return [(lo, hi, len(self.latencies))]
        width = (hi - lo) / buckets
        counts = [0] * buckets
        for value in self.latencies:
            index = min(buckets - 1, int((value - lo) / width))
            counts[index] += 1
        return [
            (lo + i * width, lo + (i + 1) * width, counts[i]) for i in range(buckets)
        ]

    def slo_attainment(self, slo_seconds: float) -> float:
        """Fraction of sampled requests completing within ``slo_seconds``."""
        if slo_seconds <= 0:
            raise ValueError("SLO must be positive")
        if not self.latencies:
            raise ValueError("no latencies recorded")
        import bisect

        return bisect.bisect_right(self.latencies, slo_seconds) / len(self.latencies)

    def to_dict(self) -> Dict[str, object]:
        """Flat dict of the window's measurements (see
        :func:`repro.analysis.export.metrics_to_dict`)."""
        from ..analysis.export import metrics_to_dict

        return metrics_to_dict(self)

    @property
    def cache_hit_count(self) -> int:
        """Requests served by any cache tier inside the window."""
        return sum(self.cache_hits.values())

    @property
    def cache_hit_fraction(self) -> float:
        """Share of completed requests served by any cache tier."""
        return self.cache_hit_count / self.completed if self.completed else 0.0

    def span_mean(self, span: str) -> float:
        return self.span_means.get(span, 0.0)

    def span_fraction(self, span: str) -> float:
        return self.span_fractions.get(span, 0.0)

    @property
    def inference_fraction(self) -> float:
        """Share of latency spent in DNN inference (Fig. 4 bottom)."""
        return self.span_fraction("inference")

    @property
    def overhead_fraction(self) -> float:
        """Share of latency spent outside DNN inference."""
        return 1.0 - self.inference_fraction

    @property
    def attempted(self) -> int:
        """Successes plus failed attempts observed inside the window."""
        return self.completed + self.timeout_count + self.shed_count

    @property
    def success_fraction(self) -> float:
        """Fraction of attempts that completed within their deadline."""
        attempted = self.attempted
        if attempted == 0:
            return 1.0
        return self.completed / attempted


class MetricsCollector:
    """Accumulates completed requests inside a measurement window."""

    def __init__(self) -> None:
        self._armed = False
        self._window_start: Optional[float] = None
        self._window_end: Optional[float] = None
        self._requests: List[InferenceRequest] = []
        self.total_completed = 0  # including warm-up
        # Resilience counters: window-gated values feed RunMetrics, the
        # ``total_*`` twins count the whole run (including warm-up).
        self._timeouts = 0
        self._retries = 0
        self._shed = 0
        self.total_timeouts = 0
        self.total_retries = 0
        self.total_shed = 0

    def arm(self, now: float) -> None:
        """Open the measurement window."""
        self._armed = True
        self._window_start = now

    def disarm(self, now: float) -> None:
        """Close the measurement window."""
        self._armed = False
        self._window_end = now

    @property
    def armed(self) -> bool:
        return self._armed

    @property
    def sample_count(self) -> int:
        return len(self._requests)

    def record(self, request: InferenceRequest) -> None:
        """Feed one completed request (counted only while armed).

        Requests that missed their deadline count as timeouts, not as
        latency samples — a late answer is a failed answer under an SLO.
        """
        if request.completion_time is None:
            raise ValueError("request has not completed")
        self.total_completed += 1
        if request.outcome != OUTCOME_OK:
            self.total_timeouts += 1
            if self._armed:
                self._timeouts += 1
            return
        if self._armed:
            self._requests.append(request)

    def note_retry(self) -> None:
        """Record one retry attempt (client- or balancer-side)."""
        self.total_retries += 1
        if self._armed:
            self._retries += 1

    def note_shed(self) -> None:
        """Record one request rejected by admission control."""
        self.total_shed += 1
        if self._armed:
            self._shed += 1

    def register_metrics(self, registry) -> None:
        """Publish run-global counters as registry views."""
        registry.counter_fn(
            "repro_requests_completed_total",
            "Requests completed, including warm-up",
            lambda: self.total_completed,
        )
        registry.counter_fn(
            "repro_requests_timeout_total",
            "Requests that missed their deadline",
            lambda: self.total_timeouts,
        )
        registry.counter_fn(
            "repro_requests_retry_total",
            "Retry attempts issued by clients or balancers",
            lambda: self.total_retries,
        )
        registry.counter_fn(
            "repro_requests_shed_total",
            "Requests rejected by admission control",
            lambda: self.total_shed,
        )

    def finalize(self) -> RunMetrics:
        """Compute window metrics; requires an opened and closed window."""
        if self._window_start is None or self._window_end is None:
            raise RuntimeError("measurement window was not opened/closed")
        window = self._window_end - self._window_start
        if window <= 0:
            raise RuntimeError(f"empty measurement window ({window})")
        if not self._requests and not (self._timeouts or self._shed):
            raise RuntimeError("no requests completed inside the window")

        latencies = [r.latency for r in self._requests]
        # A window may legitimately contain zero successes under heavy
        # fault injection; report zero goodput rather than crash.
        stats = LatencyStats.from_values(latencies) if latencies else LatencyStats.empty()
        sample_count = max(1, len(self._requests))

        span_means: Dict[str, float] = {}
        for span in ALL_SPANS:
            total = sum(r.spans.get(span, 0.0) for r in self._requests)
            span_means[span] = total / sample_count
        # Any non-canonical spans (e.g. broker) are preserved too.
        extra_spans = {
            span
            for request in self._requests
            for span in request.spans
            if span not in ALL_SPANS
        }
        for span in sorted(extra_spans):
            total = sum(r.spans.get(span, 0.0) for r in self._requests)
            span_means[span] = total / sample_count

        mean_latency = stats.mean
        span_fractions = {
            span: (value / mean_latency if mean_latency > 0 else 0.0)
            for span, value in span_means.items()
        }

        batch_sizes = [r.batch_size for r in self._requests if r.batch_size]
        mean_batch = sum(batch_sizes) / len(batch_sizes) if batch_sizes else 0.0

        cache_hits: Dict[str, int] = {}
        for request in self._requests:
            tier = getattr(request, "served_from", None)
            if tier is not None:
                cache_hits[tier] = cache_hits.get(tier, 0) + 1

        # Per-phase completion counts ride in extras only when the load
        # generator stamped phases — legacy runs keep empty extras (and
        # therefore byte-identical exports).
        phase_counts: Dict[str, int] = {}
        for request in self._requests:
            phase = getattr(request, "workload_phase", None)
            if phase is not None:
                phase_counts[phase] = phase_counts.get(phase, 0) + 1
        extras = {
            f"workload_phase_{name}": float(count)
            for name, count in sorted(phase_counts.items())
        }

        return RunMetrics(
            extras=extras,
            window_seconds=window,
            completed=len(self._requests),
            throughput=len(self._requests) / window,
            latency=stats,
            span_means=span_means,
            span_fractions=span_fractions,
            mean_batch_size=mean_batch,
            eviction_count=sum(r.eviction_count for r in self._requests),
            latencies=tuple(sorted(latencies)),
            timeout_count=self._timeouts,
            retry_count=self._retries,
            shed_count=self._shed,
            cache_hits=cache_hits,
        )
