"""Server configuration: the knobs the paper tunes in Sec. 2.3.

"Serving software provides many adjustable settings, including the
maximum queuing latency, and maximum batch size.  Additionally multiple
*instances* of the processing units can each handle requests
independently" — all of those are fields here, plus the preprocessing
device choice the paper sweeps throughout Sec. 4.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional

from ..cache.config import CacheConfig

__all__ = ["ServerConfig", "CPU_PREPROCESS", "GPU_PREPROCESS", "MODE_END_TO_END",
           "MODE_PREPROCESS_ONLY", "MODE_INFERENCE_ONLY"]

CPU_PREPROCESS = "cpu"
GPU_PREPROCESS = "gpu"

MODE_END_TO_END = "end_to_end"
MODE_PREPROCESS_ONLY = "preprocess_only"
MODE_INFERENCE_ONLY = "inference_only"

_MODES = (MODE_END_TO_END, MODE_PREPROCESS_ONLY, MODE_INFERENCE_ONLY)


@dataclass(frozen=True, kw_only=True)
class ServerConfig:
    """Tunable serving parameters for one model deployment."""

    model: str = "vit-base-16"
    runtime: str = "tensorrt"
    #: "cpu" (python-backend workers) or "gpu" (DALI-style pipelines).
    preprocess_device: str = GPU_PREPROCESS
    #: CPU preprocessing worker processes (python backend instances).
    preprocess_workers: int = 16
    #: Inference model instances *per GPU* (CUDA streams).
    inference_instances: int = 2
    #: Dynamic batcher: largest batch the engine accepts.
    max_batch_size: int = 64
    #: Dynamic batcher: max time the oldest request may wait for a batch.
    #: ``None`` disables dynamic batching (always wait for a full batch).
    max_queue_delay_seconds: Optional[float] = 1.0e-3
    #: GPU preprocessing batch size (DALI pipeline batch).
    preprocess_batch_size: int = 16
    #: Max wait to fill a preprocessing batch.
    preprocess_queue_delay_seconds: float = 0.5e-3
    #: DALI pipeline instances per GPU; two overlap host staging with
    #: GPU decode kernels the way DALI's prefetch queue does.
    preprocess_pipelines: int = 2
    #: What the server actually executes (stage isolation for Fig. 7).
    mode: str = MODE_END_TO_END
    #: Evict queued tensors to host when GPU memory fills (Fig. 5).
    allow_eviction: bool = True
    #: Content-aware caching (:mod:`repro.cache`).  ``None`` (default)
    #: disables the subsystem entirely — the server takes the exact
    #: pre-cache code path, bit-identical to uncached builds.
    cache: Optional[CacheConfig] = None

    def __post_init__(self) -> None:
        if self.preprocess_device not in (CPU_PREPROCESS, GPU_PREPROCESS):
            raise ValueError(
                f"preprocess_device must be 'cpu' or 'gpu', got {self.preprocess_device!r}"
            )
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.preprocess_workers < 1:
            raise ValueError("preprocess_workers must be >= 1")
        if self.inference_instances < 1:
            raise ValueError("inference_instances must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.preprocess_batch_size < 1:
            raise ValueError("preprocess_batch_size must be >= 1")
        if self.preprocess_pipelines < 1:
            raise ValueError("preprocess_pipelines must be >= 1")
        if self.max_queue_delay_seconds is not None and self.max_queue_delay_seconds < 0:
            raise ValueError("max_queue_delay_seconds must be >= 0 or None")
        if self.preprocess_queue_delay_seconds < 0:
            raise ValueError("preprocess_queue_delay_seconds must be >= 0")
        if self.cache is not None:
            self.cache.validate()

    @property
    def dynamic_batching(self) -> bool:
        return self.max_queue_delay_seconds is not None

    def validate(self) -> "ServerConfig":
        """Re-run field validation (useful after deserialization)."""
        self.__post_init__()
        return self

    def with_overrides(self, **kwargs) -> "ServerConfig":
        """Copy with fields replaced (tuner convenience)."""
        return replace(self, **kwargs)

    def with_(self, **kwargs) -> "ServerConfig":
        """Deprecated alias of :meth:`with_overrides`."""
        warnings.warn(
            "ServerConfig.with_() is deprecated; use with_overrides()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.with_overrides(**kwargs)
