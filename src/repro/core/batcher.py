"""Dynamic batcher (Triton-style, paper Sec. 2.1).

Aggregates individual requests into batches for the GPU.  Two policies:

- **dynamic** (``max_queue_delay`` set): greedily take whatever is queued
  up to ``max_batch``; if the batch is short, wait for more items until
  the *oldest* item has waited ``max_queue_delay``, then dispatch.
- **fixed** (``max_queue_delay`` is None): always wait for a full batch.
  This is the pre-dynamic-batching configuration of the Fig. 3 ladder,
  whose tail latency the paper shows dynamic batching improves
  (55 ms -> 38 ms).

The batcher pushes batches into a bounded output store sized to the
number of consuming instances, so requests keep accruing *queue* time
until an instance is actually free — matching how Triton reports queue
duration.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from ..kernel import ExecutionBackend, Store

__all__ = ["DynamicBatcher"]

#: Sentinel flushed through the input queue by :meth:`DynamicBatcher.drain`.
#: Travelling the ordinary ``queue.put`` path means draining adds *zero*
#: events to the schedule until a drain is actually requested, so the
#: event-id stream — and with it every pinned golden — is untouched.
_DRAIN = object()


class DynamicBatcher:
    """Forms batches from an input queue and emits them to instances."""

    def __init__(
        self,
        env: ExecutionBackend,
        max_batch: int,
        max_queue_delay: Optional[float],
        output_capacity: int = 1,
        name: str = "batcher",
        greedy: bool = True,
        preferred_batch: int = 1,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue_delay is not None and max_queue_delay < 0:
            raise ValueError(f"max_queue_delay must be >= 0, got {max_queue_delay}")
        if output_capacity < 1:
            raise ValueError(f"output_capacity must be >= 1, got {output_capacity}")
        if preferred_batch < 1 or preferred_batch > max_batch:
            raise ValueError(
                f"preferred_batch must be in [1, max_batch], got {preferred_batch}"
            )
        self.env = env
        self.name = name
        self.max_batch = max_batch
        self.max_queue_delay = max_queue_delay
        #: Greedy batchers dispatch immediately to an idle consumer
        #: (Triton inference scheduling); non-greedy ones always wait out
        #: the queue delay to build large batches (DALI preferred-batch
        #: preprocessing pipelines).
        self.greedy = greedy
        #: Triton preferred_batch_size: an idle consumer only triggers
        #: immediate dispatch once the batch has reached this size;
        #: smaller batches wait out the queue delay.
        self.preferred_batch = preferred_batch
        self.queue: Store = Store(env)
        self.batches: Store = Store(env, capacity=output_capacity)
        self.dispatched_batches = 0
        self.dispatched_items = 0
        #: Enqueue timestamp of every item still in ``queue``, in FIFO
        #: order.  The dynamic policy anchors its deadline to the oldest
        #: item's arrival (Triton max_queue_delay semantics), which must
        #: survive the batcher being blocked on a full output store.
        self._arrivals: Deque[float] = deque()
        self._draining = False
        self._drained = None
        self._process = env.process(self._run())

    def __repr__(self) -> str:
        return (
            f"<DynamicBatcher {self.name} max_batch={self.max_batch} "
            f"delay={self.max_queue_delay}>"
        )

    @property
    def mean_batch_size(self) -> float:
        if self.dispatched_batches == 0:
            return 0.0
        return self.dispatched_items / self.dispatched_batches

    def submit(self, item: Any):
        """Event: enqueue one item for batching."""
        self._arrivals.append(self.env.now)
        return self.queue.put(item)

    def next_batch(self):
        """Event: retrieve the next formed batch (instances call this)."""
        return self.batches.get()

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has been requested."""
        return self._draining

    def drain(self):
        """Event: flush everything queued as (partial) batches, then succeed.

        Graceful-shutdown hook: after ``drain()`` the batching loop stops
        waiting — no full-batch blocking, no queue-delay accumulation —
        and dispatches whatever is queued immediately, so in-flight work
        completes instead of being dropped.  The returned event succeeds
        once the input queue is empty and the last partial batch has been
        emitted.  Idempotent: repeated calls return the same event.  Any
        shutdown *deadline* belongs to the caller (``yield drain() |
        timeout`` and give up on expiry).
        """
        if self._drained is None:
            self._drained = self.env.event()
            self._draining = True
            self._arrivals.append(self.env.now)
            self.queue.put(_DRAIN)
        return self._drained

    def _consumer_idle(self) -> bool:
        """True when an instance is blocked right now waiting for a batch."""
        return self.greedy and self.batches.waiting_getters > 0

    def _dispatchable(self, batch: List[Any]) -> bool:
        """True when an idle consumer should receive ``batch`` right now."""
        return self._consumer_idle() and len(batch) >= self.preferred_batch

    # -- batching loop -------------------------------------------------------

    def _run(self):
        while True:
            first = yield self.queue.get()
            if first is _DRAIN:
                self._pop_arrival()
                self._finish_drain()
                continue
            first_arrival = self._pop_arrival()
            batch: List[Any] = [first]
            self._drain_into(batch)

            if len(batch) < self.max_batch and not self._draining:
                if self.max_queue_delay is None:
                    yield from self._fill_to_capacity(batch)
                elif not self._dispatchable(batch):
                    # Triton semantics: an idle instance receives the batch
                    # immediately once it reaches the preferred size; the
                    # queue delay accumulates it otherwise.
                    yield from self._fill_until_deadline(batch, first_arrival)

            yield self.batches.put(batch)
            self.dispatched_batches += 1
            self.dispatched_items += len(batch)

    def _finish_drain(self) -> None:
        """The drain sentinel reached the loop head: decide if we're done."""
        if self.queue.items:
            # Items were submitted behind the sentinel; push it to the
            # back so they flush (immediately, since draining) first.
            self._arrivals.append(self.env.now)
            self.queue.items.append(_DRAIN)
        else:
            self._drained.succeed()

    def _requeue_sentinel(self) -> None:
        """A fill pass pulled the sentinel mid-batch: put it back in front.

        Its arrival stamp was not popped, so the arrivals deque stays
        aligned with the queue contents.
        """
        self.queue.items.appendleft(_DRAIN)

    def _pop_arrival(self) -> float:
        """Consume the enqueue timestamp of the item just removed."""
        if self._arrivals:
            return self._arrivals.popleft()
        return self.env.now

    def _drain_into(self, batch: List[Any]) -> None:
        """Move already-queued items into ``batch`` without waiting."""
        items = self.queue.items
        arrivals = self._arrivals
        while len(batch) < self.max_batch and items and items[0] is not _DRAIN:
            batch.append(items.popleft())
            if arrivals:
                arrivals.popleft()

    def _fill_to_capacity(self, batch: List[Any]):
        """Fixed-batch policy: block until the batch is completely full."""
        while len(batch) < self.max_batch:
            item = yield self.queue.get()
            if item is _DRAIN:
                self._requeue_sentinel()
                return
            self._pop_arrival()
            batch.append(item)

    def _fill_until_deadline(self, batch: List[Any], first_arrival: float):
        """Dynamic policy: top up until the oldest item's delay expires
        or a consumer goes idle.

        The deadline is anchored to the *oldest item's enqueue time*, not
        to when this fill pass starts: when the batcher was stalled on a
        full output store, the time its queue head already waited counts
        against ``max_queue_delay`` (Triton's definition of queue delay).
        """
        deadline = first_arrival + self.max_queue_delay
        timeout = None
        while len(batch) < self.max_batch and not self._dispatchable(batch):
            remaining = deadline - self.env.now
            if remaining <= 0:
                return
            if timeout is None:
                # One timer for the whole fill pass: the deadline is fixed,
                # so re-arming a fresh Timeout per item is pure allocation.
                timeout = self.env.timeout(remaining)
            get_event = self.queue.get()
            yield get_event | timeout
            if get_event.triggered:
                if get_event.value is _DRAIN:
                    self._requeue_sentinel()
                    return
                self._pop_arrival()
                batch.append(get_event.value)
                self._drain_into(batch)
            else:
                get_event.cancel()
                return
