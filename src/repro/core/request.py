"""Inference requests and their lifecycle accounting.

Every request carries a span ledger recording where its wall-clock time
went — the raw material for the paper's latency breakdowns (Fig. 6), the
queue-time analysis (Fig. 5), and the inference-time-percentage plot
(Fig. 4 bottom).

When a :class:`~repro.telemetry.tracer.Tracer` arms a request (setting
``timeline`` to a list), the ledger additionally records every span as a
timestamped ``(name, start, end)`` interval — the raw material for
Perfetto traces that show true queue/compute overlap and batch grouping
rather than back-to-back duration sums.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..vision.image import Image

__all__ = [
    "InferenceRequest",
    "SPAN_FRONTEND",
    "SPAN_PREPROCESS_WAIT",
    "SPAN_PREPROCESS",
    "SPAN_QUEUE",
    "SPAN_TRANSFER",
    "SPAN_INFERENCE",
    "SPAN_POSTPROCESS",
    "ALL_SPANS",
    "OUTCOME_OK",
    "OUTCOME_TIMEOUT",
    "OUTCOME_SHED",
    "OUTCOMES",
]

SPAN_FRONTEND = "frontend"
SPAN_PREPROCESS_WAIT = "preprocess_wait"
SPAN_PREPROCESS = "preprocess"
SPAN_QUEUE = "queue"
SPAN_TRANSFER = "transfer"
SPAN_INFERENCE = "inference"
SPAN_POSTPROCESS = "postprocess"

#: Canonical presentation order of the spans.
ALL_SPANS = (
    SPAN_FRONTEND,
    SPAN_PREPROCESS_WAIT,
    SPAN_PREPROCESS,
    SPAN_QUEUE,
    SPAN_TRANSFER,
    SPAN_INFERENCE,
    SPAN_POSTPROCESS,
)

#: Request outcomes.  ``ok`` requests count toward throughput and the
#: latency sample; ``timeout`` (deadline exceeded) and ``shed``
#: (rejected by admission control) count toward the failure counters.
OUTCOME_OK = "ok"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_SHED = "shed"
OUTCOMES = (OUTCOME_OK, OUTCOME_TIMEOUT, OUTCOME_SHED)

_request_ids = itertools.count()


class InferenceRequest:
    """One in-flight inference request."""

    __slots__ = (
        "request_id",
        "image",
        "arrival_time",
        "completion_time",
        "spans",
        "gpu_index",
        "batch_size",
        "eviction_count",
        "deadline",
        "attempt",
        "outcome",
        "served_from",
        "workload_phase",
        "timeline",
        "trace",
        "_open_spans",
    )

    def __init__(
        self,
        image: Image,
        arrival_time: float,
        deadline: Optional[float] = None,
        attempt: int = 0,
        phase: Optional[str] = None,
    ) -> None:
        self.request_id = next(_request_ids)
        self.image = image
        self.arrival_time = arrival_time
        self.completion_time: Optional[float] = None
        self.spans: Dict[str, float] = {}
        self.gpu_index: Optional[int] = None
        #: Size of the batch this request was inferred in.
        self.batch_size: Optional[int] = None
        #: Number of times this request's tensor was evicted from GPU memory.
        self.eviction_count = 0
        #: Absolute simulation time by which the request must complete,
        #: or ``None`` for no deadline (default).
        self.deadline = deadline
        #: Retry attempt index (0 for the first submission).
        self.attempt = attempt
        #: Lifecycle outcome; stamped at completion (see ``OUTCOMES``).
        self.outcome = OUTCOME_OK
        #: Highest cache tier that served this request ("result",
        #: "tensor", "image"), or ``None`` for a fully computed request.
        self.served_from: Optional[str] = None
        #: Workload phase ("day", "night", "flash", "region:eu", ...)
        #: the arrival was issued under, or ``None`` when the load
        #: generator carries no phase information (legacy clients).
        self.workload_phase = phase
        #: Timestamped ``(name, start, end)`` intervals, recorded only
        #: when a tracer armed the request (``None`` = recording off).
        self.timeline: Optional[List[Tuple[str, float, float]]] = None
        #: Distributed-trace hop this request belongs to
        #: (:class:`~repro.telemetry.context.TraceContext`), or ``None``
        #: when the request is not part of a distributed trace.
        self.trace = None
        self._open_spans: Dict[str, float] = {}

    def __repr__(self) -> str:
        state = "done" if self.completion_time is not None else "in-flight"
        return f"<InferenceRequest #{self.request_id} {self.image} ({state})>"

    # -- span ledger --------------------------------------------------------

    def begin(self, span: str, now: float) -> None:
        """Open a span (idempotent-safe: reopening replaces the mark)."""
        self._open_spans[span] = now

    def end(self, span: str, now: float) -> None:
        """Close a span and accumulate its duration."""
        started = self._open_spans.pop(span, None)
        if started is None:
            raise RuntimeError(f"span {span!r} was never opened on {self!r}")
        self.add(span, now - started, now=now)

    def span_open(self, span: str) -> bool:
        """True if ``span`` is currently open."""
        return span in self._open_spans

    def add(self, span: str, seconds: float, now: Optional[float] = None) -> None:
        """Accumulate ``seconds`` into ``span`` directly.

        ``now`` is the interval's *end* timestamp; when given and the
        request is armed for tracing, the interval also lands on the
        timeline (callers without a timestamp keep the duration-only
        ledger exactly as before).
        """
        if seconds < 0:
            raise ValueError(f"negative span duration {seconds} for {span!r}")
        self.spans[span] = self.spans.get(span, 0.0) + seconds
        if self.timeline is not None and now is not None:
            self.timeline.append((span, now - seconds, now))

    def complete(self, now: float) -> None:
        """Mark the request finished; stamps a ``timeout`` outcome when a
        deadline was set and missed."""
        if self.completion_time is not None:
            raise RuntimeError(f"{self!r} completed twice")
        self.completion_time = now
        if self.deadline is not None and now >= self.deadline:
            self.outcome = OUTCOME_TIMEOUT

    @property
    def deadline_exceeded(self) -> bool:
        """True once the request has missed its deadline."""
        return self.outcome == OUTCOME_TIMEOUT

    # -- derived quantities ---------------------------------------------------

    @property
    def latency(self) -> float:
        """End-to-end latency; only valid once completed."""
        if self.completion_time is None:
            raise RuntimeError(f"{self!r} has not completed")
        return self.completion_time - self.arrival_time

    @property
    def accounted_seconds(self) -> float:
        """Sum of all recorded spans."""
        return sum(self.spans.values())

    def span_fraction(self, span: str) -> float:
        """Fraction of end-to-end latency spent in ``span``."""
        latency = self.latency
        if latency <= 0:
            return 0.0
        return self.spans.get(span, 0.0) / latency
