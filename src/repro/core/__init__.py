"""The serving system: config, batcher, server, metrics, requests."""

from .batcher import DynamicBatcher
from .config import (
    CPU_PREPROCESS,
    GPU_PREPROCESS,
    MODE_END_TO_END,
    MODE_INFERENCE_ONLY,
    MODE_PREPROCESS_ONLY,
    ServerConfig,
)
from .metrics import LatencyStats, MetricsCollector, RunMetrics, percentile
from .request import (
    ALL_SPANS,
    SPAN_FRONTEND,
    SPAN_INFERENCE,
    SPAN_POSTPROCESS,
    SPAN_PREPROCESS,
    SPAN_PREPROCESS_WAIT,
    SPAN_QUEUE,
    SPAN_TRANSFER,
    InferenceRequest,
)
from .server import BatchEntry, InferenceServer

__all__ = [
    "ALL_SPANS",
    "BatchEntry",
    "CPU_PREPROCESS",
    "DynamicBatcher",
    "GPU_PREPROCESS",
    "InferenceRequest",
    "InferenceServer",
    "LatencyStats",
    "MODE_END_TO_END",
    "MODE_INFERENCE_ONLY",
    "MODE_PREPROCESS_ONLY",
    "MetricsCollector",
    "RunMetrics",
    "SPAN_FRONTEND",
    "SPAN_INFERENCE",
    "SPAN_POSTPROCESS",
    "SPAN_PREPROCESS",
    "SPAN_PREPROCESS_WAIT",
    "SPAN_QUEUE",
    "SPAN_TRANSFER",
    "ServerConfig",
    "percentile",
]
