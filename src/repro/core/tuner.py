"""Server-parameter search (paper Sec. 2.3).

"To optimize the server setup, we perform a quick search on its settings
that include the number of preprocessing and inference processes, the
maximum allowed batch size, and the concurrency per server.  This
results in a ~300 img/s throughput improvement."

:func:`tune_server` reproduces that: a grid search over those same
dimensions, each point evaluated with a short simulated run, returning
the best configuration and the full trace so the improvement over the
starting point can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .config import ServerConfig

__all__ = ["TuningPoint", "TuningResult", "tune_server", "DEFAULT_SEARCH_SPACE"]

#: The dimensions the paper names, with modest grids ("a quick search").
DEFAULT_SEARCH_SPACE: Dict[str, Sequence] = {
    "preprocess_workers": (8, 16, 24),
    "inference_instances": (1, 2, 3),
    "max_batch_size": (32, 64, 128),
    "concurrency": (128, 256, 512),
}


@dataclass(frozen=True)
class TuningPoint:
    """One evaluated configuration."""

    server: ServerConfig
    concurrency: int
    throughput: float
    p99_latency: float


@dataclass(frozen=True)
class TuningResult:
    """Outcome of the search."""

    baseline: TuningPoint
    best: TuningPoint
    trace: Tuple[TuningPoint, ...]

    def to_dict(self) -> Dict[str, Any]:
        """Flat dict of the search outcome (see
        :func:`repro.analysis.export.result_to_dict`)."""
        from ..analysis.export import result_to_dict

        return result_to_dict(self)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"tuned {self.baseline.throughput:.0f} -> {self.best.throughput:.0f} img/s "
            f"({self.speedup:.2f}x) over {len(self.trace)} evaluations"
        )

    @property
    def improvement(self) -> float:
        """Absolute throughput gain of best over baseline (img/s)."""
        return self.best.throughput - self.baseline.throughput

    @property
    def speedup(self) -> float:
        return self.best.throughput / self.baseline.throughput


def tune_server(
    base: ServerConfig,
    dataset=None,
    search_space: Optional[Dict[str, Sequence]] = None,
    baseline_concurrency: int = 256,
    measure_requests: int = 1200,
    warmup_requests: int = 300,
    seed: int = 0,
) -> TuningResult:
    """Grid-search server settings around ``base`` for max throughput.

    The search is axis-aligned (coordinate descent over the grid, one
    full pass), which matches a practitioner's "quick search" and keeps
    the simulation budget small while still finding the large wins.
    """
    # Imported here to avoid a circular import (serving imports core).
    from ..serving.runner import ExperimentConfig, run_experiment

    space = dict(DEFAULT_SEARCH_SPACE if search_space is None else search_space)
    concurrencies = tuple(space.pop("concurrency", (baseline_concurrency,)))

    def evaluate(server: ServerConfig, concurrency: int) -> TuningPoint:
        result = run_experiment(
            ExperimentConfig(
                server=server,
                dataset=dataset,
                concurrency=concurrency,
                warmup_requests=warmup_requests,
                measure_requests=measure_requests,
                seed=seed,
            )
        )
        return TuningPoint(
            server=server,
            concurrency=concurrency,
            throughput=result.throughput,
            p99_latency=result.p99_latency,
        )

    baseline = evaluate(base, baseline_concurrency)
    trace: List[TuningPoint] = [baseline]
    best = baseline

    # Coordinate descent: sweep each server dimension, keep the best.
    for field_name, values in space.items():
        for value in values:
            if getattr(best.server, field_name) == value:
                continue
            candidate = best.server.with_overrides(**{field_name: value})
            point = evaluate(candidate, best.concurrency)
            trace.append(point)
            if point.throughput > best.throughput:
                best = point
    # Concurrency is a client-side knob, swept last.
    for concurrency in concurrencies:
        if concurrency == best.concurrency:
            continue
        point = evaluate(best.server, concurrency)
        trace.append(point)
        if point.throughput > best.throughput:
            best = point

    return TuningResult(baseline=baseline, best=best, trace=tuple(trace))
