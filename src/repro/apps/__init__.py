"""Application pipelines: classification serving, naive loop, face pipeline."""

from .classification import serve_classification, stage_throughputs, zero_load_breakdown
from .face_pipeline import SPAN_BROKER, SPAN_IDENTIFY, FacePipeline, FacePipelineConfig
from .naive_loop import NaiveLoopConfig, NaiveLoopResult, run_naive_loop
from .video_classification import VideoClassificationServer, VideoServerConfig

__all__ = [
    "FacePipeline",
    "FacePipelineConfig",
    "NaiveLoopConfig",
    "NaiveLoopResult",
    "SPAN_BROKER",
    "SPAN_IDENTIFY",
    "VideoClassificationServer",
    "VideoServerConfig",
    "run_naive_loop",
    "serve_classification",
    "stage_throughputs",
    "zero_load_breakdown",
]
