"""Video-classification serving (the paper's Sec. 1 motivating pipeline).

A video request is decoded on host cores (GOP-structured, see
:mod:`repro.vision.video`), ``frames_per_clip`` frames are sampled,
each frame is resized/normalized, and the frame batch runs through the
DNN; the clip's label is the aggregate.  The pipeline exposes the same
span ledger as image serving, so the overhead anatomy of video requests
drops out of the same analysis tooling.

Decode parallelism is per-request (one clip decodes on one core — video
entropy decoding is sequential), which is exactly why video serving is
even more preprocessing-bound than image serving.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Callable, Optional

from ..core.batcher import DynamicBatcher
from ..core.metrics import MetricsCollector
from ..core.request import (
    SPAN_FRONTEND,
    SPAN_INFERENCE,
    SPAN_POSTPROCESS,
    SPAN_PREPROCESS,
    SPAN_PREPROCESS_WAIT,
    SPAN_QUEUE,
    SPAN_TRANSFER,
    InferenceRequest,
)
from ..hardware.gpu import PRIORITY_INFERENCE
from ..hardware.pcie import D2H, H2D
from ..hardware.platform import ServerNode
from ..models.dnn import inference_latency
from ..models.runtimes import get_runtime
from ..models.zoo import get_model
from ..kernel import Event, ExecutionBackend, Resource
from ..vision.video import Video, uniform_sample_indices, video_decode_cost
from ..vision.ops import cpu_normalize_seconds, cpu_resize_seconds

__all__ = ["VideoServerConfig", "VideoClassificationServer"]


@dataclass(frozen=True)
class VideoServerConfig:
    """Deployment knobs for video classification."""

    model: str = "vit-base-16"
    runtime: str = "tensorrt"
    frames_per_clip: int = 8
    decode_workers: int = 16
    inference_instances: int = 2
    max_batch_size: int = 64  # frames, across clips
    max_queue_delay_seconds: float = 2.0e-3

    def __post_init__(self) -> None:
        if self.frames_per_clip < 1:
            raise ValueError("frames_per_clip must be >= 1")
        if self.decode_workers < 1 or self.inference_instances < 1:
            raise ValueError("worker/instance counts must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_queue_delay_seconds < 0:
            raise ValueError("max_queue_delay_seconds must be >= 0")

    def with_overrides(self, **kwargs) -> "VideoServerConfig":
        """Copy with fields replaced."""
        return replace(self, **kwargs)

    def with_(self, **kwargs) -> "VideoServerConfig":
        """Deprecated alias of :meth:`with_overrides`."""
        warnings.warn(
            "VideoServerConfig.with_() is deprecated; use with_overrides()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.with_overrides(**kwargs)


class _Clip:
    __slots__ = ("request", "done", "frames_remaining")

    def __init__(self, request: InferenceRequest, done: Event, frames: int) -> None:
        self.request = request
        self.done = done
        self.frames_remaining = frames


class VideoClassificationServer:
    """Decode -> sample -> per-frame preprocess -> batched inference."""

    def __init__(
        self,
        env: ExecutionBackend,
        node: ServerNode,
        config: VideoServerConfig,
        metrics: Optional[MetricsCollector] = None,
        on_complete: Optional[Callable[[InferenceRequest], None]] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.config = config
        self.calibration = node.calibration
        self.model = get_model(config.model)
        self.runtime = get_runtime(config.runtime)
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.on_complete = on_complete
        self.gpu = node.gpus[0]
        self.tensor_bytes = self.model.input_size * self.model.input_size * 3 * 2

        self._decoders = Resource(env, capacity=config.decode_workers)
        self._batcher = DynamicBatcher(
            env,
            max_batch=config.max_batch_size,
            max_queue_delay=config.max_queue_delay_seconds,
            output_capacity=config.inference_instances,
            name="video-frame-batcher",
        )
        for _ in range(config.inference_instances):
            env.process(self._inference_instance())

    def __repr__(self) -> str:
        return (
            f"<VideoClassificationServer {self.model.name} "
            f"frames={self.config.frames_per_clip}>"
        )

    def submit(self, video: Video) -> Event:
        """Submit one clip; the event succeeds when it is classified."""
        # The request's "image" slot carries a representative frame.
        request = InferenceRequest(video.frame_as_image(0), arrival_time=self.env.now)
        done = self.env.event()
        self.env.process(self._handle(video, request, done))
        return done

    # -- pipeline ----------------------------------------------------------------

    def _handle(self, video: Video, request: InferenceRequest, done: Event):
        cpu = self.node.cpu
        calib = self.calibration.cpu

        request.begin(SPAN_FRONTEND, self.env.now)
        yield from cpu.run(calib.frontend_overhead_seconds)
        with self.node.ingest.request() as grant:
            yield grant
            yield self.env.timeout(
                video.compressed_bytes / calib.ingest_blob_bytes_per_second
            )
        request.end(SPAN_FRONTEND, self.env.now)

        # Sequential decode of the sampled frames' GOP spans on one core.
        samples = uniform_sample_indices(video, self.config.frames_per_clip)
        decode = video_decode_cost(video, samples, self.calibration)
        frame = video.frame_as_image(0)
        per_frame_post = (
            cpu_resize_seconds(frame, self.calibration)
            + cpu_normalize_seconds(self.model.input_size, self.calibration)
        )
        request.begin(SPAN_PREPROCESS_WAIT, self.env.now)
        with self._decoders.request() as worker:
            yield worker
            request.end(SPAN_PREPROCESS_WAIT, self.env.now)
            request.begin(SPAN_PREPROCESS, self.env.now)
            yield from cpu.run(decode.total_seconds + len(samples) * per_frame_post)
            request.end(SPAN_PREPROCESS, self.env.now)

        # Frame tensors to the GPU in one gathered copy per clip.
        nbytes = len(samples) * self.tensor_bytes
        start = self.env.now
        yield from self.gpu.link.transfer(nbytes, H2D, pinned=False)
        request.add(SPAN_TRANSFER, self.env.now - start)

        clip = _Clip(request, done, frames=len(samples))
        request.begin(SPAN_QUEUE, self.env.now)
        for _ in range(len(samples)):
            yield self._batcher.submit(clip)

    def _inference_instance(self):
        while True:
            batch = yield self._batcher.next_batch()
            now = self.env.now
            clips = {}
            for clip in batch:
                clips[id(clip)] = clip
                if clip.request.span_open(SPAN_QUEUE):
                    clip.request.end(SPAN_QUEUE, now)
                if not clip.request.span_open(SPAN_INFERENCE):
                    clip.request.begin(SPAN_INFERENCE, now)
                if clip.request.batch_size is None:
                    clip.request.batch_size = len(batch)
            latency = inference_latency(self.model, self.runtime, len(batch), self.calibration)
            yield from self.gpu.execute(latency, priority=PRIORITY_INFERENCE)
            now = self.env.now
            for clip in batch:
                clip.frames_remaining -= 1
            start = self.env.now
            yield from self.gpu.link.transfer(len(batch) * 4000, D2H, pinned=False)
            elapsed = self.env.now - start
            for clip in clips.values():
                clip.request.add(SPAN_TRANSFER, elapsed)
                if clip.frames_remaining == 0:
                    clip.request.end(SPAN_INFERENCE, now)
                    self.env.process(self._finalize(clip))

    def _finalize(self, clip: _Clip):
        request = clip.request
        request.begin(SPAN_POSTPROCESS, self.env.now)
        # Aggregate frame logits into the clip label.
        yield from self.node.cpu.run(self.calibration.cpu.response_overhead_seconds * 2)
        request.end(SPAN_POSTPROCESS, self.env.now)
        request.complete(self.env.now)
        self.metrics.record(request)
        if self.on_complete is not None:
            self.on_complete(request)
        clip.done.succeed(request)
