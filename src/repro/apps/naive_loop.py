"""The un-served baseline of the Fig. 3 software ladder.

Paper Sec. 2.3: "we start with the PyTorch model downloaded directly
from HuggingFace and we run it without any serving software, just a
Python loop that decompresses JPEG images one-by-one, followed by
batched DNN inference" (~431 img/s for ViT-base), then swap the
preprocessing for DALI on the CPU (~446 img/s) and DALI on the GPU
(~842 img/s).

All three variants share the same synchronous structure — preprocess a
batch, move it to the GPU, run inference, fetch results — with *no*
overlap between stages, which is exactly why serving software wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.gpu import PRIORITY_INFERENCE
from ..hardware.pcie import D2H, H2D
from ..hardware.platform import ServerNode
from ..models.dnn import inference_latency
from ..models.runtimes import get_runtime
from ..models.zoo import get_model
from ..kernel import ExecutionBackend, RandomStreams, VirtualTimeBackend
from ..vision.datasets import Dataset
from ..vision.ops import cpu_preprocess_cost, gpu_preprocess_cost

__all__ = ["NaiveLoopConfig", "NaiveLoopResult", "run_naive_loop"]

_PREPROCESS_MODES = ("python", "dali-cpu", "dali-gpu")

#: Python interpreter overhead per image in the hand-written loop
#: (PIL open, list handling, tensor conversion).
PYTHON_PER_IMAGE_SECONDS = 0.15e-3
#: DALI's CPU pipeline removes the PIL/python per-image overhead but the
#: paper's configuration ran it with a single worker thread (default),
#: which is why the gain over the raw loop is small (431 -> 446 img/s).
DALI_CPU_THREADS = 1


@dataclass(frozen=True)
class NaiveLoopConfig:
    """One rung of the un-served part of the ladder."""

    model: str = "vit-base-16"
    runtime: str = "pytorch"
    preprocess: str = "python"  # python | dali-cpu | dali-gpu
    batch_size: int = 64
    batches: int = 50

    def __post_init__(self) -> None:
        if self.preprocess not in _PREPROCESS_MODES:
            raise ValueError(
                f"preprocess must be one of {_PREPROCESS_MODES}, got {self.preprocess!r}"
            )
        if self.batch_size < 1 or self.batches < 1:
            raise ValueError("batch_size and batches must be >= 1")


@dataclass(frozen=True)
class NaiveLoopResult:
    """Measured behaviour of the loop."""

    throughput: float  # images / second
    seconds_per_batch: float
    preprocess_seconds_per_batch: float
    inference_seconds_per_batch: float
    transfer_seconds_per_batch: float


def run_naive_loop(
    config: NaiveLoopConfig,
    dataset: Dataset,
    seed: int = 0,
) -> NaiveLoopResult:
    """Simulate the synchronous loop and return its throughput."""
    env = VirtualTimeBackend()
    streams = RandomStreams(seed)
    node = ServerNode(env, gpu_count=1)
    gpu = node.gpus[0]
    model = get_model(config.model)
    runtime = get_runtime(config.runtime)
    calibration = node.calibration
    tensor_bytes = model.input_size * model.input_size * 3 * 4
    rng = streams.stream("naive-loop")

    totals = {"preprocess": 0.0, "inference": 0.0, "transfer": 0.0}

    def loop():
        batch_latency = inference_latency(model, runtime, config.batch_size, calibration)
        for _ in range(config.batches):
            images = [dataset.sample(rng) for _ in range(config.batch_size)]

            # --- preprocessing ------------------------------------------------
            start = env.now
            if config.preprocess == "python":
                for image in images:
                    cost = cpu_preprocess_cost(image, model.input_size, calibration)
                    work = (
                        cost.decode_seconds
                        + cost.resize_seconds
                        + cost.normalize_seconds
                        + PYTHON_PER_IMAGE_SECONDS
                    )
                    yield from node.cpu.run(work)
            elif config.preprocess == "dali-cpu":
                # Batched decode across the pipeline's worker threads,
                # still synchronous with inference.
                per_image = [
                    cpu_preprocess_cost(image, model.input_size, calibration)
                    for image in images
                ]
                total_core_seconds = sum(
                    c.decode_seconds + c.resize_seconds + c.normalize_seconds
                    for c in per_image
                )
                yield from node.cpu.run(total_core_seconds / DALI_CPU_THREADS)
            else:  # dali-gpu
                # DALI's python iterator still costs interpreter time per
                # sample (feed_ndarray, queue management).
                yield from node.cpu.run(
                    config.batch_size * PYTHON_PER_IMAGE_SECONDS
                )
                costs = [
                    gpu_preprocess_cost(image, model.input_size, calibration)
                    for image in images
                ]
                # Host staging across the DALI thread pool.
                staging_jobs = [
                    env.process(_stage(env, node, c.staging_seconds)) for c in costs
                ]
                yield env.all_of(staging_jobs)
                compressed = sum(image.compressed_bytes for image in images)
                yield from gpu.link.transfer(compressed, H2D, pinned=True)
                kernel = calibration.gpu.preprocess_launch_seconds + sum(
                    c.kernel_seconds for c in costs
                )
                yield from gpu.execute(kernel)
            totals["preprocess"] += env.now - start

            # --- input transfer (skipped for dali-gpu: already resident) -------
            start = env.now
            if config.preprocess != "dali-gpu":
                yield from gpu.link.transfer(
                    config.batch_size * tensor_bytes, H2D, pinned=False
                )
            totals["transfer"] += env.now - start

            # --- inference + synchronous result fetch ---------------------------
            start = env.now
            yield from gpu.execute(batch_latency, priority=PRIORITY_INFERENCE)
            totals["inference"] += env.now - start
            start = env.now
            yield from gpu.link.transfer(config.batch_size * 4000, D2H, pinned=False)
            totals["transfer"] += env.now - start

    done = env.process(loop())
    env.run(until=done)

    images = config.batch_size * config.batches
    elapsed = env.now
    return NaiveLoopResult(
        throughput=images / elapsed,
        seconds_per_batch=elapsed / config.batches,
        preprocess_seconds_per_batch=totals["preprocess"] / config.batches,
        inference_seconds_per_batch=totals["inference"] / config.batches,
        transfer_seconds_per_batch=totals["transfer"] / config.batches,
    )


def _stage(env: ExecutionBackend, node: ServerNode, seconds: float):
    with node.staging.request() as grant:
        yield grant
        yield env.timeout(seconds)
