"""The multi-DNN face identification pipeline (paper Sec. 4.7, Fig. 10/11).

Stage 1 detects faces in video frames with Faster R-CNN; each detected
face becomes a message carrying a 160x160 crop; stage 2 identifies each
face with FaceNet.  Because one frame yields many faces, the stages run
at different rates and are connected through a message broker:

- **kafka**: synchronous per-message produces (as in the prior work the
  paper revisits, Richins et al.) against a disk-backed log;
- **redis**: pipelined per-frame produces against an in-memory list;
- **fused**: no broker — the detection instance identifies each face
  inline, sequentially, at batch 1 (the "running two stages with
  different rates" inefficiency the paper describes).

Stage-2 batching is a dynamic batcher over the *message stream*, so the
crossover where Redis overtakes Fused (paper: >= 9 faces/frame) emerges
from batch-formation dynamics: below it the message rate is too low to
form multi-face batches, so brokered identification runs at the same
batch-1 efficiency as Fused while also paying broker costs.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..brokers import Broker, make_broker
from ..core.batcher import DynamicBatcher
from ..core.metrics import MetricsCollector
from ..core.request import (
    SPAN_INFERENCE,
    SPAN_POSTPROCESS,
    SPAN_PREPROCESS,
    SPAN_QUEUE,
    InferenceRequest,
)
from ..hardware.gpu import Gpu, PRIORITY_INFERENCE
from ..hardware.pcie import D2H, H2D
from ..hardware.platform import ServerNode
from ..models.detection import FACE_CROP_BYTES, FacesPerFrame, FixedFaces
from ..models.dnn import inference_cost, inference_latency
from ..models.runtimes import get_runtime
from ..models.zoo import get_model
from ..kernel import Event, ExecutionBackend, RandomStreams
from ..vision.image import Image

__all__ = ["FacePipelineConfig", "FacePipeline", "SPAN_BROKER", "SPAN_IDENTIFY", "SPAN_DETECT"]

#: Extra spans recorded on frame requests.
SPAN_DETECT = "inference"  # stage-1 DNN time reuses the inference span
SPAN_BROKER = "broker"
SPAN_IDENTIFY = "identify"

_BROKER_MODES = ("kafka", "redis", "fused")


@dataclass(frozen=True, kw_only=True)
class FacePipelineConfig:
    """Deployment knobs for the two-stage pipeline."""

    broker: str = "redis"
    faces_per_frame: int = 5
    detection_model: str = "faster-rcnn-face"
    identification_model: str = "facenet"
    runtime: str = "tensorrt"
    detection_instances: int = 4
    detection_max_batch: int = 4
    detection_queue_delay_seconds: float = 2.0e-3
    identification_instances: int = 2
    identification_max_batch: int = 64
    #: Triton preferred_batch_size for stage 2: an idle instance only
    #: grabs a batch early once it holds this many faces.
    identification_preferred_batch: int = 16
    identification_queue_delay_seconds: float = 10.0e-3
    #: Per-frame CPU frame handling (receive + colour convert + crop prep).
    frame_overhead_seconds: float = 0.5e-3
    #: Per-face CPU dispatch overhead in the fused inline loop.
    fused_dispatch_cpu_seconds: float = 0.05e-3
    #: Per-batch stage-2 *server* overhead (request handling, scheduler,
    #: stream sync) paid only by the brokered deployments, where
    #: identification runs behind its own serving frontend.
    stage2_batch_overhead_seconds: float = 2.0e-3
    #: Fraction of the kernel-launch chain the fused in-process
    #: invocation pays (CUDA-graph capture amortizes launches; there is
    #: no server dispatch or stream synchronization per call).
    fused_launch_fraction: float = 0.04

    def __post_init__(self) -> None:
        if self.broker not in _BROKER_MODES:
            raise ValueError(f"broker must be one of {_BROKER_MODES}, got {self.broker!r}")
        if self.faces_per_frame < 0:
            raise ValueError("faces_per_frame must be >= 0")
        if self.detection_instances < 1 or self.identification_instances < 1:
            raise ValueError("instance counts must be >= 1")
        if self.detection_max_batch < 1 or self.identification_max_batch < 1:
            raise ValueError("batch sizes must be >= 1")

    def validate(self) -> "FacePipelineConfig":
        """Re-run field validation (useful after deserialization)."""
        self.__post_init__()
        return self

    def with_overrides(self, **kwargs) -> "FacePipelineConfig":
        """Copy with fields replaced."""
        return replace(self, **kwargs)

    def with_(self, **kwargs) -> "FacePipelineConfig":
        """Deprecated alias of :meth:`with_overrides`."""
        warnings.warn(
            "FacePipelineConfig.with_() is deprecated; use with_overrides()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.with_overrides(**kwargs)


class _Frame:
    """Book-keeping for one in-flight frame."""

    __slots__ = ("request", "done", "faces_total", "faces_remaining")

    def __init__(self, request: InferenceRequest, done: Event, faces: int) -> None:
        self.request = request
        self.done = done
        self.faces_total = faces
        self.faces_remaining = faces


class FacePipeline:
    """Face detection -> (broker) -> identification on one server node."""

    def __init__(
        self,
        env: ExecutionBackend,
        node: ServerNode,
        config: FacePipelineConfig,
        streams: RandomStreams,
        metrics: Optional[MetricsCollector] = None,
        on_complete=None,
    ) -> None:
        self.env = env
        self.node = node
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.on_complete = on_complete
        self.calibration = node.calibration

        self.detector = get_model(config.detection_model)
        self.identifier = get_model(config.identification_model)
        self.runtime = get_runtime(config.runtime)
        self.faces_distribution: FacesPerFrame = FixedFaces(config.faces_per_frame)
        self._faces_rng = streams.stream("faces-per-frame")

        self.gpu: Gpu = node.gpus[0]
        self.fused = config.broker == "fused"
        self.broker: Optional[Broker] = None
        if not self.fused:
            self.broker = make_broker(config.broker, env, node)

        self._det_batcher = DynamicBatcher(
            env,
            max_batch=config.detection_max_batch,
            max_queue_delay=config.detection_queue_delay_seconds,
            output_capacity=config.detection_instances,
            name="detect-batcher",
        )
        for _ in range(config.detection_instances):
            env.process(self._detection_instance())

        #: Optional :class:`~repro.telemetry.tracer.Tracer`; when set,
        #: submitted frames are armed for timestamped span recording.
        self.tracer = None

        if not self.fused:
            self._id_batcher = DynamicBatcher(
                env,
                max_batch=config.identification_max_batch,
                max_queue_delay=config.identification_queue_delay_seconds,
                output_capacity=config.identification_instances,
                name="identify-batcher",
                preferred_batch=config.identification_preferred_batch,
            )
            env.process(self._consumer())
            for _ in range(config.identification_instances):
                env.process(self._identification_instance())

    def __repr__(self) -> str:
        return f"<FacePipeline broker={self.config.broker} faces={self.config.faces_per_frame}>"

    def register_metrics(self, registry) -> None:
        """Publish pipeline state as registry views (observation only)."""
        self.metrics.register_metrics(registry)
        registry.gauge_fn(
            "repro_stage_queue_depth",
            "Requests waiting in the stage batcher",
            lambda: self._det_batcher.queue.size,
            stage="detect",
        )
        registry.counter_fn(
            "repro_stage_batches_total",
            "Batches handed to stage instances",
            lambda: self._det_batcher.dispatched_batches,
            stage="detect",
        )
        if not self.fused:
            registry.gauge_fn(
                "repro_stage_queue_depth",
                "Requests waiting in the stage batcher",
                lambda: self._id_batcher.queue.size,
                stage="identify",
            )
            registry.counter_fn(
                "repro_stage_batches_total",
                "Batches handed to stage instances",
                lambda: self._id_batcher.dispatched_batches,
                stage="identify",
            )
        if self.broker is not None:
            self.broker.register_metrics(registry)

    # -- public API ------------------------------------------------------------

    def submit(self, frame_image: Image, phase: Optional[str] = None) -> Event:
        """Submit one frame; the event succeeds when every face is identified."""
        request = InferenceRequest(frame_image, arrival_time=self.env.now,
                                   phase=phase)
        if self.tracer is not None:
            self.tracer.register(request)
        done = self.env.event()
        faces = self.faces_distribution.sample(self._faces_rng)
        frame = _Frame(request, done, faces)
        self.env.process(self._ingest(frame))
        return done

    # -- stage 1: detection -------------------------------------------------------

    def _ingest(self, frame: _Frame):
        request = frame.request
        request.begin(SPAN_PREPROCESS, self.env.now)
        yield from self.node.cpu.run(self.config.frame_overhead_seconds)
        # Frame to the GPU for detection (pinned capture buffers).
        yield from self.gpu.link.transfer(frame.request.image.decoded_bytes, H2D, pinned=True)
        request.end(SPAN_PREPROCESS, self.env.now)
        request.begin(SPAN_QUEUE, self.env.now)
        yield self._det_batcher.submit(frame)

    def _detection_instance(self):
        config = self.config
        while True:
            frames: List[_Frame] = yield self._det_batcher.next_batch()
            now = self.env.now
            for frame in frames:
                frame.request.end(SPAN_QUEUE, now)
                frame.request.batch_size = len(frames)
                frame.request.begin(SPAN_INFERENCE, now)
            latency = inference_latency(
                self.detector, self.runtime, len(frames), self.calibration
            )
            yield from self.gpu.execute(latency, priority=PRIORITY_INFERENCE)
            now = self.env.now
            for frame in frames:
                frame.request.end(SPAN_INFERENCE, now)

            if self.fused:
                yield from self._identify_inline(frames)
            else:
                yield from self._publish_faces(frames)

    # -- fused: inline per-face identification --------------------------------------

    def _identify_inline(self, frames: List[_Frame]):
        """Sequential per-face identification inside the detection worker.

        The fused process walks the detected faces and invokes the
        identification DNN once per face at batch 1 — the straightforward
        in-process implementation, and exactly the "two stages with
        different rates" inefficiency the paper describes: no
        cross-frame batching, a full kernel-launch chain per face.  It
        wins at low fan-out (no broker or stage-2 server costs at all)
        and loses once the brokered stage-2 batcher sees enough message
        rate to form multi-face batches (paper: >= 9 faces/frame).
        """
        cost = inference_cost(self.identifier, self.runtime, 1, self.calibration)
        single = (
            max(cost.compute_seconds, cost.memory_seconds)
            + cost.launch_seconds * self.config.fused_launch_fraction
        )
        for frame in frames:
            if frame.faces_total == 0:
                self.env.process(self._finalize(frame))
                continue
            frame.request.begin(SPAN_IDENTIFY, self.env.now)
            for _ in range(frame.faces_total):
                yield from self.node.cpu.run(self.config.fused_dispatch_cpu_seconds)
                yield from self.gpu.execute(single, priority=PRIORITY_INFERENCE)
            frame.request.end(SPAN_IDENTIFY, self.env.now)
            self.env.process(self._finalize(frame))

    # -- brokered: produce / consume / batched identification ------------------------

    def _publish_faces(self, frames: List[_Frame]):
        """Move crops to the host and produce one message per face."""
        broker = self.broker
        assert broker is not None
        for frame in frames:
            if frame.faces_total == 0:
                self.env.process(self._finalize(frame))
                continue
            # Crop extraction result back to host memory for serialization.
            yield from self.gpu.link.transfer(
                frame.faces_total * FACE_CROP_BYTES, D2H, pinned=True
            )
            frame.request.begin(SPAN_BROKER, self.env.now)
            if broker.name == "kafka":
                # Prior-work style: synchronous produce per message.
                for face_index in range(frame.faces_total):
                    message = yield from broker.produce((frame, face_index), FACE_CROP_BYTES)
                    if message.lost:
                        self._note_lost_face(frame)
            else:
                # Redis pipelining: one round trip, per-message marginal
                # cost inside the broker.
                yield from self._pipelined_produce(broker, frame)
            frame.request.end(SPAN_BROKER, self.env.now)

    def _pipelined_produce(self, broker: Broker, frame: _Frame):
        # One client round trip for the whole frame's faces...
        yield self.env.timeout(broker.produce_seconds)
        # ...then the broker processes each message without the producer
        # paying a per-message round trip.
        for face_index in range(frame.faces_total):
            message = yield from broker.produce_pipelined((frame, face_index), FACE_CROP_BYTES)
            if message.lost:
                self._note_lost_face(frame)

    def _note_lost_face(self, frame: _Frame) -> None:
        """Account a face whose message an at-most-once broker dropped.

        The frame must still finish (the client is waiting on its done
        event), so a lost face counts as handled; if it was the last
        outstanding face the frame finalizes here instead of in the
        identification stage.
        """
        frame.faces_remaining -= 1
        if frame.faces_remaining == 0:
            if frame.request.span_open(SPAN_IDENTIFY):
                frame.request.end(SPAN_IDENTIFY, self.env.now)
            self.env.process(self._finalize(frame))

    def _consumer(self):
        """Drain the topic into the identification batcher."""
        broker = self.broker
        assert broker is not None
        while True:
            message = yield from broker.consume()
            frame, _face_index = message.payload
            frame.request.add(SPAN_BROKER, message.consume_seconds, now=self.env.now)
            yield self._id_batcher.submit(message)

    def _identification_instance(self):
        while True:
            batch = yield self._id_batcher.next_batch()
            frames_in_batch: Dict[int, _Frame] = {}
            now = self.env.now
            for message in batch:
                frame, _ = message.payload
                frames_in_batch[id(frame)] = frame
                if not frame.request.span_open(SPAN_IDENTIFY):
                    frame.request.begin(SPAN_IDENTIFY, now)
            # Crops back to the GPU (pinned staging) and batched FaceNet.
            yield from self.gpu.link.transfer(len(batch) * FACE_CROP_BYTES, H2D, pinned=True)
            latency = (
                inference_latency(self.identifier, self.runtime, len(batch), self.calibration)
                + self.config.stage2_batch_overhead_seconds
            )
            yield from self.gpu.execute(latency, priority=PRIORITY_INFERENCE)
            now = self.env.now
            for message in batch:
                frame, _ = message.payload
                frame.faces_remaining -= 1
            for frame in frames_in_batch.values():
                if frame.faces_remaining == 0:
                    frame.request.end(SPAN_IDENTIFY, now)
                    self.env.process(self._finalize(frame))

    # -- completion --------------------------------------------------------------

    def _finalize(self, frame: _Frame):
        request = frame.request
        request.begin(SPAN_POSTPROCESS, self.env.now)
        yield from self.node.cpu.run(self.calibration.cpu.response_overhead_seconds)
        request.end(SPAN_POSTPROCESS, self.env.now)
        request.complete(self.env.now)
        self.metrics.record(request)
        if self.on_complete is not None:
            self.on_complete(request)
        frame.done.succeed(request)
