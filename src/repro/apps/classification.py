"""Convenience wrappers for single-DNN classification serving experiments.

These helpers wrap :func:`repro.serving.runner.run_experiment` with the
configurations the paper uses repeatedly: a throughput-optimized
TensorRT deployment of one model, driven closed-loop at some
concurrency with one of the reference image sizes.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.config import MODE_END_TO_END, ServerConfig
from ..serving.runner import ExperimentConfig, RunResult, run_experiment
from ..vision.datasets import Dataset, reference_dataset

__all__ = ["serve_classification", "zero_load_breakdown", "stage_throughputs"]


def serve_classification(
    model: str = "vit-base-16",
    preprocess_device: str = "gpu",
    image_size: str = "medium",
    concurrency: int = 512,
    gpu_count: int = 1,
    dataset: Optional[Dataset] = None,
    runtime: str = "tensorrt",
    seed: int = 0,
    measure_requests: int = 2000,
    on_complete=None,
    **server_overrides,
) -> RunResult:
    """Run one throughput-optimized classification serving experiment.

    ``on_complete`` (e.g. an :class:`~repro.analysis.TraceCollector`) is
    invoked with every finished request.
    """
    server = ServerConfig(
        model=model,
        runtime=runtime,
        preprocess_device=preprocess_device,
        preprocess_batch_size=64,
        **server_overrides,
    )
    config = ExperimentConfig(
        server=server,
        dataset=dataset if dataset is not None else reference_dataset(image_size),
        concurrency=concurrency,
        gpu_count=gpu_count,
        seed=seed,
        warmup_requests=max(300, concurrency // 2),
        measure_requests=max(measure_requests, 2 * concurrency),
        on_complete=on_complete,
    )
    return run_experiment(config)


def zero_load_breakdown(
    model: str = "vit-base-16",
    preprocess_device: str = "cpu",
    image_size: str = "medium",
    seed: int = 0,
) -> RunResult:
    """Zero-load (concurrency 1) latency breakdown run (Fig. 6 setting)."""
    server = ServerConfig(model=model, preprocess_device=preprocess_device)
    config = ExperimentConfig(
        server=server,
        dataset=reference_dataset(image_size),
        concurrency=1,
        warmup_requests=20,
        measure_requests=200,
        seed=seed,
    )
    return run_experiment(config)


def stage_throughputs(
    model: str,
    image_size: str,
    concurrency: int = 512,
    seed: int = 0,
) -> Dict[str, float]:
    """Fig. 7 stage isolation: end-to-end vs preprocess vs inference."""
    out: Dict[str, float] = {}
    for mode in (MODE_END_TO_END, "preprocess_only", "inference_only"):
        result = serve_classification(
            model=model,
            preprocess_device="gpu",
            image_size=image_size,
            concurrency=concurrency,
            seed=seed,
            mode=mode,
        )
        out[mode] = result.throughput
    return out
