"""Message brokers for multi-DNN pipelines: Kafka-like, Redis-like, fused."""

from .base import Broker, Message
from .fused import FusedBroker
from .kafka import KafkaBroker
from .redis import RedisBroker

__all__ = ["Broker", "FusedBroker", "KafkaBroker", "Message", "RedisBroker"]


def make_broker(name: str, env, node) -> Broker:
    """Factory: build a broker by name ('kafka', 'redis', or 'fused')."""
    brokers = {"kafka": KafkaBroker, "redis": RedisBroker, "fused": FusedBroker}
    try:
        cls = brokers[name]
    except KeyError:
        known = ", ".join(sorted(brokers))
        raise KeyError(f"unknown broker {name!r}; known brokers: {known}") from None
    return cls(env, node)
