"""Disk-backed log broker (Apache-Kafka-like, paper Sec. 4.7).

Kafka persists every message to an on-disk commit log.  The model
charges three real costs:

- **producer blocking**: the synchronous produce round trip
  (serialize -> socket -> broker ack) observed by the producing stage;
- **broker CPU**: per-message serialization/indexing work on host cores;
- **disk bandwidth**: every message body is appended to the log, and the
  log writer's sequential bandwidth is finite — this is the throughput
  ceiling that makes Kafka lose by 2.25x at 25 faces/frame (Fig. 11).

Consumers poll; an empty topic costs a poll interval of added latency.
"""

from __future__ import annotations

from typing import Any, Generator

from ..hardware.platform import ServerNode
from ..kernel import ExecutionBackend, Resource
from .base import Broker, Message

__all__ = ["KafkaBroker"]


class KafkaBroker(Broker):
    """Kafka-like disk-backed broker."""

    name = "kafka"

    def __init__(self, env: ExecutionBackend, node: ServerNode) -> None:
        super().__init__(env, node)
        calib = node.calibration.broker
        self.produce_seconds = calib.kafka_produce_seconds
        self.broker_cpu_seconds = calib.kafka_broker_cpu_seconds
        self.consume_seconds = calib.kafka_consume_seconds
        self.poll_interval = calib.kafka_poll_interval_seconds
        self.disk_bandwidth = calib.kafka_disk_bandwidth
        # The commit-log writer is sequential: one appender.
        self._log_writer = Resource(env, capacity=1)
        self.disk_bytes_written = 0.0

    def produce(self, payload: Any, nbytes: float) -> Generator:
        message = Message(payload, nbytes, produced_at=self.env.now)
        start = self.env.now

        # Synchronous produce round trip on the producer's thread.
        yield self.env.timeout(self.produce_seconds)
        # Broker-side CPU (serialize, index, page-cache management).
        yield from self.node.cpu.run(self.broker_cpu_seconds)
        # Sequential append to the on-disk log: the throughput ceiling.
        with self._log_writer.request() as grant:
            yield grant
            yield self.env.timeout(nbytes / self.disk_bandwidth)
        self.disk_bytes_written += nbytes

        message.broker_seconds += self.env.now - start
        yield from self._publish(message)
        return message

    def consume(self) -> Generator:
        # Poll loop: an empty topic costs a poll interval of latency.
        while self.topic.size == 0:
            yield self.env.timeout(self.poll_interval)
        message = yield from self._take()
        start = self.env.now
        yield from self.node.cpu.run(self.consume_seconds)
        message.consume_seconds += self.env.now - start
        return message

    def produce_pipelined(self, payload: Any, nbytes: float) -> Generator:
        """Batched produce: broker CPU + log append, no client round trip."""
        message = Message(payload, nbytes, produced_at=self.env.now)
        start = self.env.now
        yield from self.node.cpu.run(self.broker_cpu_seconds)
        with self._log_writer.request() as grant:
            yield grant
            yield self.env.timeout(nbytes / self.disk_bandwidth)
        self.disk_bytes_written += nbytes
        message.broker_seconds += self.env.now - start
        yield from self._publish(message)
        return message
