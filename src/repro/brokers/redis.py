"""In-memory broker (Redis-like, paper Sec. 4.7).

Redis keeps the queue in memory (LPUSH/BRPOP on a list): no disk in the
path, microsecond-scale per-op costs, and memory bandwidth so high it is
effectively never the ceiling at these message rates.  This is the
configuration the paper shows cuts the broker share of latency from
Kafka's 71 % to just 6 % and more than doubles system throughput.
"""

from __future__ import annotations

from typing import Any, Generator

from ..hardware.platform import ServerNode
from ..kernel import ExecutionBackend, Resource
from .base import Broker, Message

__all__ = ["RedisBroker"]


class RedisBroker(Broker):
    """Redis-like in-memory broker."""

    name = "redis"

    def __init__(self, env: ExecutionBackend, node: ServerNode) -> None:
        super().__init__(env, node)
        calib = node.calibration.broker
        self.produce_seconds = calib.redis_produce_seconds
        self.consume_seconds = calib.redis_consume_seconds
        self.broker_cpu_seconds = calib.redis_broker_cpu_seconds
        self.memory_bandwidth = calib.redis_memory_bandwidth
        # Redis is single-threaded: one event loop serializes commands.
        self._event_loop = Resource(env, capacity=1)

    def produce(self, payload: Any, nbytes: float) -> Generator:
        message = Message(payload, nbytes, produced_at=self.env.now)
        start = self.env.now

        # LPUSH round trip observed by the producer.
        yield self.env.timeout(self.produce_seconds)
        # Redis event-loop time: command parse + memory copy.
        with self._event_loop.request() as grant:
            yield grant
            yield self.env.timeout(
                self.broker_cpu_seconds + nbytes / self.memory_bandwidth
            )

        message.broker_seconds += self.env.now - start
        yield from self._publish(message)
        return message

    def consume(self) -> Generator:
        # BRPOP blocks server-side: no poll-interval latency.
        message = yield from self._take()
        start = self.env.now
        yield self.env.timeout(self.consume_seconds)
        with self._event_loop.request() as grant:
            yield grant
            yield self.env.timeout(self.broker_cpu_seconds)
        message.consume_seconds += self.env.now - start
        return message

    def produce_pipelined(self, payload: Any, nbytes: float) -> Generator:
        """Pipelined LPUSH: event-loop work only, no client round trip."""
        message = Message(payload, nbytes, produced_at=self.env.now)
        start = self.env.now
        with self._event_loop.request() as grant:
            yield grant
            yield self.env.timeout(
                self.broker_cpu_seconds + nbytes / self.memory_bandwidth
            )
        message.broker_seconds += self.env.now - start
        yield from self._publish(message)
        return message
