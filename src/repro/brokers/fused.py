"""Null broker for the fused pipeline (paper Sec. 4.7).

The fused configuration runs detection and identification in a single
process with no broker at all: handing a face to stage 2 is a function
call.  ``produce``/``consume`` cost nothing, which is why the fused
system wins at low faces-per-frame — its penalty (per-face synchronous
identification with no cross-frame batching) lives in the pipeline, not
here.
"""

from __future__ import annotations

from typing import Any, Generator

from .base import Broker, Message

__all__ = ["FusedBroker"]


class FusedBroker(Broker):
    """Zero-cost in-process hand-off."""

    name = "fused"
    # An in-process hand-off has no log to replay from: a delivery lost
    # to an injected fault is simply gone.
    delivery = "at_most_once"

    def produce(self, payload: Any, nbytes: float) -> Generator:
        message = Message(payload, nbytes, produced_at=self.env.now)
        yield from self._publish(message)
        return message

    def consume(self) -> Generator:
        message = yield from self._take()
        return message
