"""Message-broker abstraction for multi-DNN pipelines (paper Sec. 4.7).

A broker decouples a producer stage (face detection) from a consumer
stage (face identification) that run at different rates.  The interface
is deliberately small — ``produce`` and ``consume`` process generators —
so the Kafka, Redis, and (null) fused implementations are drop-in
replacements inside :mod:`repro.apps.face_pipeline`.

Every implementation charges its costs to real simulated resources
(producer time, broker CPU, disk or memory bandwidth), so the broker's
share of end-to-end latency and its throughput ceiling *emerge* rather
than being asserted.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..hardware.platform import ServerNode
from ..kernel import ExecutionBackend, Store

__all__ = ["Broker", "Message"]


class Message:
    """One payload flowing producer -> broker -> consumer."""

    __slots__ = ("payload", "nbytes", "produced_at", "consumed_at",
                 "broker_seconds", "consume_seconds", "lost")

    def __init__(self, payload: Any, nbytes: float, produced_at: float) -> None:
        self.payload = payload
        self.nbytes = nbytes
        self.produced_at = produced_at
        self.consumed_at: Optional[float] = None
        #: Produce-side broker time observed by this message.
        self.broker_seconds = 0.0
        #: Consume-side broker time (poll + deserialize) for this message.
        self.consume_seconds = 0.0
        #: True when an at-most-once broker dropped this message.
        self.lost = False

    @property
    def queue_delay(self) -> float:
        if self.consumed_at is None:
            raise RuntimeError("message not yet consumed")
        return self.consumed_at - self.produced_at


class Broker:
    """Base broker: an in-simulation topic plus cost hooks."""

    name = "broker"
    #: Delivery guarantee under injected faults: ``"at_least_once"``
    #: brokers retry a lost delivery after a redelivery delay (the
    #: message is never dropped); ``"at_most_once"`` hand-offs drop it.
    delivery = "at_least_once"

    def __init__(self, env: ExecutionBackend, node: ServerNode) -> None:
        self.env = env
        self.node = node
        self.topic: Store = Store(env)
        self.produced = 0
        self.consumed = 0
        self.bytes_through = 0.0
        #: Fault-injection hook (:class:`~repro.faults.health.BrokerHealth`);
        #: ``None`` on the healthy path so fault-free runs pay nothing.
        self.health = None
        #: Messages dropped (at-most-once delivery under loss faults).
        self.lost = 0
        #: Redelivery attempts (at-least-once delivery under loss faults).
        self.redelivered = 0

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} depth={self.topic.size}>"

    @property
    def depth(self) -> int:
        """Messages currently queued in the topic."""
        return self.topic.size

    def register_metrics(self, registry) -> None:
        """Publish broker counters as registry views."""
        broker = self.name
        registry.counter_fn(
            "repro_broker_produced_total",
            "Messages published to the topic",
            lambda: self.produced,
            broker=broker,
        )
        registry.counter_fn(
            "repro_broker_consumed_total",
            "Messages taken from the topic",
            lambda: self.consumed,
            broker=broker,
        )
        registry.counter_fn(
            "repro_broker_bytes_total",
            "Payload bytes through the broker",
            lambda: self.bytes_through,
            broker=broker,
        )
        registry.counter_fn(
            "repro_broker_lost_total",
            "Messages dropped by at-most-once delivery under faults",
            lambda: self.lost,
            broker=broker,
        )
        registry.counter_fn(
            "repro_broker_redelivered_total",
            "Redelivery attempts by at-least-once delivery under faults",
            lambda: self.redelivered,
            broker=broker,
        )
        registry.gauge_fn(
            "repro_broker_depth",
            "Messages currently queued in the topic",
            lambda: self.depth,
            broker=broker,
        )

    def produce(self, payload: Any, nbytes: float) -> Generator:
        """Process generator: publish one message (blocking semantics of
        the modelled client library).  Returns the :class:`Message`."""
        raise NotImplementedError

    def consume(self) -> Generator:
        """Process generator: take the next message (blocks when empty).
        Returns the :class:`Message`."""
        raise NotImplementedError

    def produce_pipelined(self, payload: Any, nbytes: float) -> Generator:
        """Process generator: publish one message from a *pipelined*
        client batch — broker-side work only, no per-message client
        round trip.  Default implementation just enqueues."""
        message = Message(payload, nbytes, produced_at=self.env.now)
        yield from self._publish(message)
        return message

    # -- shared helpers ------------------------------------------------------

    def _publish(self, message: Message) -> Generator:
        if self.health is not None:
            yield from self.health.gate()
            while self.health.draw_loss():
                if self.delivery == "at_most_once":
                    message.lost = True
                    self.lost += 1
                    return
                # At-least-once: the producer pays a redelivery round
                # trip and tries again; the message is never dropped.
                self.redelivered += 1
                yield self.env.timeout(self.health.redelivery_seconds)
                message.broker_seconds += self.health.redelivery_seconds
                yield from self.health.gate()
        yield self.topic.put(message)
        self.produced += 1
        self.bytes_through += message.nbytes

    def _take(self) -> Generator:
        message = yield self.topic.get()
        if self.health is not None:
            yield from self.health.gate()
        message.consumed_at = self.env.now
        self.consumed += 1
        return message
