"""Calendar-queue event scheduling: O(1) amortized push/pop at any depth.

A calendar queue (Brown, CACM 1988) hashes events into fixed-width time
buckets the way a desk calendar hashes appointments into days: pushing
an event costs one arithmetic bucket lookup and a sorted insert; popping
scans forward from the current "day" and takes the earliest entry.  With
the bucket count resized to track occupancy, both operations are O(1)
amortized — flat in queue depth, where a binary heap pays O(log n) per
operation.

This implementation preserves the engine's **exact total order**: items
are ``(time, priority, eid, event)`` tuples, identical to the heapq
path, and every pop returns the globally smallest tuple.  Two
same-time, same-priority events therefore still dispatch in insertion
(``eid``) order, so a simulation produces bit-identical results under
either scheduler (pinned by ``tests/serving/test_scheduler_determinism``).

Implementation notes:

- **Incrementally sorted buckets.**  Each bucket is kept in ascending
  tuple order via :func:`bisect.insort`; the head is always the
  bucket's minimum, so pops are ``list.pop(0)`` (a C memmove).  This
  beats the classic lazy-sort-on-arrival variant for DES workloads,
  which constantly schedule *same-time* events (store handoffs,
  process-end notifications) into the very bucket being drained — with
  lazy sorting every such push forces a full re-sort on the next pop.
- **Window ids, not boundary floats.**  A bucket's current "day" is the
  integer window ``trunc(time * inv_width)``; membership tests compare
  window ids instead of ``time < boundary`` floats, so push and pop can
  never disagree about which day an event belongs to by one ulp.
  ``trunc`` is monotone in time, which is all the scan needs.
- **Dynamic resize.**  The bucket count doubles when occupancy exceeds
  two items per bucket and halves below one item per two buckets; the
  bucket width is re-estimated from the mean nonzero gap between
  time-adjacent events at the *front* of the queue (Brown's rule),
  keeping roughly one event per bucket-day.  A pathologically clumped
  bucket additionally triggers a cooldown-limited width re-estimate,
  which rescues runs whose time structure shifts without the count
  ever crossing a resize threshold.
"""

from __future__ import annotations

from bisect import insort
from heapq import nsmallest
from typing import Any, List, Optional, Tuple

__all__ = ["CalendarQueue"]

#: Smallest and largest bucket counts the resize policy will use.
_MIN_BUCKETS = 8
_MAX_BUCKETS = 1 << 20

#: How many front-of-queue items the width estimator samples.  Large
#: enough to span several *distinct* event times even when bursts of
#: same-time events dominate the front.
_SAMPLE_LIMIT = 256

#: A bucket this large (and this far above the mean population) is
#: considered clumped and may trigger a width re-estimate.
_OVERFULL = 64

#: Widths below this make window ids overflow-prone; clamp.
_MIN_WIDTH = 1e-12

_INF = float("inf")

# One scheduled event: exactly the heapq path's entry shape.
Item = Tuple[float, int, int, Any]


class CalendarQueue:
    """Bucketed priority queue over ``(time, priority, eid, event)`` tuples."""

    __slots__ = (
        "_buckets",
        "_nbuckets",
        "_width",
        "_inv_width",
        "_count",
        "_cursor",
        "_grow_at",
        "_shrink_at",
        "_pops",
        "_reestimate_after",
    )

    def __init__(self, width: float = 1.0, buckets: int = _MIN_BUCKETS) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        if buckets < 1:
            raise ValueError(f"bucket count must be >= 1, got {buckets}")
        self._nbuckets = buckets
        self._buckets: List[List[Item]] = [[] for _ in range(buckets)]
        self._width = float(width)
        self._inv_width = 1.0 / self._width
        self._count = 0
        #: Current scan window id; pops never return to earlier windows
        #: unless a push rewinds the cursor.
        self._cursor = 0
        #: Total pops ever; drives the overfull re-estimate cooldown.
        self._pops = 0
        self._reestimate_after = 0
        self._set_thresholds()

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __repr__(self) -> str:
        return (
            f"<CalendarQueue(len={self._count}, buckets={self._nbuckets}, "
            f"width={self._width:g})>"
        )

    @property
    def bucket_count(self) -> int:
        return self._nbuckets

    @property
    def width(self) -> float:
        return self._width

    # -- core operations ---------------------------------------------------

    def push(self, item: Item) -> None:
        """Insert one ``(time, priority, eid, event)`` entry."""
        window = int(item[0] * self._inv_width)
        insort(self._buckets[window % self._nbuckets], item)
        count = self._count + 1
        self._count = count
        if window < self._cursor or count == 1:
            # An event landed behind the scan position (absolute-time
            # scheduling can do this after idle periods): rewind so the
            # next pop starts at its day.
            self._cursor = window
        if count > self._grow_at and self._nbuckets < _MAX_BUCKETS:
            self._resize(self._nbuckets * 2)

    def pop(self) -> Item:
        """Remove and return the smallest entry (IndexError when empty)."""
        count = self._count
        if not count:
            raise IndexError("pop from an empty CalendarQueue")
        self._pops += 1
        buckets = self._buckets
        nbuckets = self._nbuckets
        inv_width = self._inv_width
        cursor = self._cursor
        scanned = 0
        while True:
            bucket = buckets[cursor % nbuckets]
            if bucket:
                if (
                    len(bucket) > _OVERFULL
                    and len(bucket) * nbuckets > 8 * count
                    and self._pops >= self._reestimate_after
                ):
                    # This width clumps events into one bucket, which
                    # degrades both insort and head-pop to O(clump)
                    # memmoves.  Re-estimate — behind a cooldown of one
                    # full queue turnover, so a genuinely gap-free burst
                    # (which no width can spread) does not re-pay the
                    # O(n) estimate on every pop.
                    self._reestimate_after = self._pops + count
                    width = self._estimate_width(self._items())
                    if not 0.5 <= width / self._width <= 2.0:
                        self._resize(nbuckets, width)
                        buckets = self._buckets
                        nbuckets = self._nbuckets
                        inv_width = self._inv_width
                        cursor = self._cursor
                        scanned = 0
                        continue
                head = bucket[0]
                if int(head[0] * inv_width) <= cursor:
                    del bucket[0]
                    self._count = count - 1
                    self._cursor = cursor
                    if count - 1 < self._shrink_at and nbuckets > _MIN_BUCKETS:
                        self._resize(nbuckets // 2)
                    return head
            cursor += 1
            scanned += 1
            if scanned > nbuckets:
                # A full year of empty days: jump straight to the
                # earliest event instead of walking empty windows.
                cursor = self._earliest_window()
                scanned = 0

    def peek(self) -> float:
        """Time of the earliest entry, or ``inf`` when empty.

        Does not advance the cursor, so interleaving ``peek`` with
        ``push``/``pop`` (the cluster lockstep pattern) stays exact.
        """
        item = self._peek_item()
        return item[0] if item is not None else _INF

    def _peek_item(self) -> Optional[Item]:
        if not self._count:
            return None
        best: Optional[Item] = None
        for bucket in self._buckets:
            if bucket:
                head = bucket[0]
                if best is None or head < best:
                    best = head
        return best

    # -- sizing ------------------------------------------------------------

    def _set_thresholds(self) -> None:
        self._grow_at = self._nbuckets * 2
        self._shrink_at = self._nbuckets // 2

    def _earliest_window(self) -> int:
        best = self._peek_item()
        assert best is not None
        return int(best[0] * self._inv_width)

    def _items(self) -> List[Item]:
        out: List[Item] = []
        for bucket in self._buckets:
            out.extend(bucket)
        return out

    def _estimate_width(self, items: List[Item]) -> float:
        """Brown's rule: width ~ mean gap between *adjacent* event times.

        Samples the front of the queue (the events about to pop) and
        averages the nonzero gaps between time-adjacent pairs.  Front
        gaps — not total-span/samples — is the load-bearing choice: a
        DES population is typically a dense cluster of imminent events
        plus far-future stragglers, and a span-based mean is dominated
        by the empty space between clusters, yielding a width that
        packs the whole imminent cluster into one bucket.  Zero gaps
        (same-time bursts) carry no width information and are skipped.
        """
        if len(items) < 2:
            return self._width
        sample = nsmallest(_SAMPLE_LIMIT, items)
        gaps = [b[0] - a[0] for a, b in zip(sample, sample[1:])]
        gaps = [g for g in gaps if g > 0.0]
        if not gaps:
            # Degenerate same-time burst (e.g. simultaneous process
            # bootstraps): no time structure to estimate from.
            return self._width
        # One-and-a-half "days" per mean gap keeps adjacent events in
        # distinct buckets without stranding the tail in far futures.
        return max((sum(gaps) / len(gaps)) * 1.5, _MIN_WIDTH)

    def _resize(self, nbuckets: int, width: Optional[float] = None) -> None:
        items = self._items()
        if width is None:
            width = self._estimate_width(items)
        self._nbuckets = nbuckets
        self._buckets = [[] for _ in range(nbuckets)]
        self._width = width
        self._inv_width = 1.0 / width
        self._set_thresholds()
        self._count = 0
        if items:
            cursor = int(min(item[0] for item in items) * self._inv_width)
        else:
            cursor = 0
        self._cursor = cursor
        inv_width = self._inv_width
        buckets = self._buckets
        for item in items:
            insort(buckets[int(item[0] * inv_width) % nbuckets], item)
        self._count = len(items)
