"""Continuous-quantity container (e.g. bytes of GPU memory).

A :class:`Container` holds an amount between 0 and ``capacity``.  ``put``
events succeed once there is room; ``get`` events succeed once there is
enough content.  Waiters are served in arrival order with first-fit
semantics: a blocked large request does not stall later ones that fit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = ["Container", "ContainerPut", "ContainerGet"]


class ContainerPut(Event):
    """Succeeds when ``amount`` has been added to the container."""

    def __init__(self, container: "Container", amount: float) -> None:
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        self.container = container
        container._put_waiters.append(self)
        container._trigger()

    def cancel(self) -> None:
        """Withdraw a still-pending put."""
        if not self.triggered and self in self.container._put_waiters:
            self.container._put_waiters.remove(self)


class ContainerGet(Event):
    """Succeeds when ``amount`` has been removed from the container."""

    def __init__(self, container: "Container", amount: float) -> None:
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        self.container = container
        container._get_waiters.append(self)
        container._trigger()

    def cancel(self) -> None:
        """Withdraw a still-pending get."""
        if not self.triggered and self in self.container._get_waiters:
            self.container._get_waiters.remove(self)


class Container:
    """Continuous stock with bounded capacity."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if init < 0 or init > capacity:
            raise ValueError(f"init {init} out of [0, {capacity}]")
        self.env = env
        self._capacity = capacity
        self._level = init
        self._put_waiters: List[ContainerPut] = []
        self._get_waiters: List[ContainerGet] = []

    def __repr__(self) -> str:
        return f"<Container(level={self._level}/{self._capacity})>"

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    @property
    def free(self) -> float:
        """Remaining headroom."""
        return self._capacity - self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; event succeeds when it fits."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; event succeeds when available."""
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        """Serve queued puts/gets until stable.

        Waiters are scanned in arrival order but a blocked large request
        does not stall later requests that fit ("first fit" service).
        This matters for the GPU memory pool: a pipeline waiting for a
        large allocation must not deadlock the small reload allocations
        whose completion will eventually free memory.
        """
        progressed = True
        while progressed:
            progressed = False
            idx = 0
            while idx < len(self._put_waiters):
                put = self._put_waiters[idx]
                if self._level + put.amount <= self._capacity:
                    self._put_waiters.pop(idx)
                    self._level += put.amount
                    put.succeed()
                    progressed = True
                else:
                    idx += 1
            idx = 0
            while idx < len(self._get_waiters):
                get = self._get_waiters[idx]
                if self._level >= get.amount:
                    self._get_waiters.pop(idx)
                    self._level -= get.amount
                    get.succeed()
                    progressed = True
                else:
                    idx += 1
