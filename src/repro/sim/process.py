"""Coroutine processes for the simulation kernel.

A :class:`Process` wraps a generator that yields :class:`~repro.sim.events.Event`
objects.  The process is itself an event: it triggers with the generator's
return value when the generator finishes, which lets processes wait for each
other (``yield env.process(...)``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import PENDING, URGENT, Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = ["Process", "Interrupt", "Initialize"]


class Interrupt(Exception):
    """Raised into a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __str__(self) -> str:
        return f"Interrupt({self.cause!r})"


class Initialize(Event):
    """Internal bootstrap event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class _InterruptEvent(Event):
    """Internal urgent event that delivers an :class:`Interrupt`."""

    __slots__ = ()

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks = [process._resume]
        # Detach the process from whatever it was waiting on so the stale
        # event does not resume it a second time when it eventually fires.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._target = None
        process.env.schedule(self, priority=URGENT)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process event triggers when the generator terminates: successfully
    with its return value, or failed with the uncaught exception.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "throw"):
            raise ValueError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event the process is currently waiting for (None if just
        #: started, terminated, or currently being resumed).
        self._target: Optional[Event] = Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process({self.name}) object at {id(self):#x}>"

    @property
    def name(self) -> str:
        """Name of the wrapped generator function."""
        return getattr(self._generator, "__name__", str(self._generator))

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting on."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` until the wrapped generator has terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` exception into the process.

        The interrupt is delivered at the current simulation time with
        urgent priority.  Interrupting a terminated process is an error;
        a process cannot interrupt itself.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        _InterruptEvent(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the state of ``event``."""
        env = self.env
        env._active_proc = self
        generator = self._generator

        # Detach from the event we were waiting on so a stale interrupt does
        # not try to unregister from it.
        self._target = None

        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # The event failed: throw its exception into the process.
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                # Generator finished: the process event succeeds.
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except BaseException as exc:  # noqa: BLE001 - deliberate catch-all
                # Generator died: the process event fails.  If nobody waits
                # on this process the exception will escalate from run().
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            # The generator yielded a new event to wait for.
            if next_event is None:
                event = _fail_yield(self, next_event)
                continue
            if not isinstance(next_event, Event):
                event = _fail_yield(self, next_event)
                continue
            if next_event.env is not env:
                event = _fail_yield(self, next_event, reason="different environment")
                continue

            if next_event.callbacks is not None:
                # Event not yet processed: register and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Event already processed: resume immediately with its state.
            event = next_event

        env._active_proc = None


class _YieldError(Event):
    """Failed pseudo-event used to report an invalid yield."""

    __slots__ = ()

    def __init__(self, env: "Environment", message: str) -> None:
        super().__init__(env)
        self._ok = False
        self._value = RuntimeError(message)
        self._defused = False


def _fail_yield(process: Process, item: Any, reason: str = "not an event") -> Event:
    """Build a failed event describing an invalid ``yield`` from a process."""
    message = f"invalid yield value {item!r} from {process.name} ({reason})"
    return _YieldError(process.env, message)
