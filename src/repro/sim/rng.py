"""Deterministic random-number streams for reproducible simulations.

Every stochastic component of the simulator (arrival jitter, image-size
sampling, faces-per-frame draws, service-time noise) draws from its own
named stream so that adding randomness to one component never perturbs
another.  Streams are derived from a single experiment seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent, named ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def __repr__(self) -> str:
        return f"<RandomStreams(seed={self._seed}, streams={sorted(self._streams)})>"

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        The sub-seed is derived by hashing (seed, name) so stream identity
        depends only on the experiment seed and the stream's name, never
        on creation order.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            sub_seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(sub_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child family, e.g. one per replica of a component."""
        digest = hashlib.sha256(f"{self._seed}:spawn:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
