"""Time-series instrumentation for simulations.

A :class:`Monitor` samples arbitrary probes (queue depths, resource
occupancy, memory levels) at a fixed simulated-time interval, producing
the time series behind utilization plots and bottleneck forensics.
:class:`Counter` and :class:`Gauge` are lightweight manual instruments
for event-driven statistics.

Everything here is optional: the serving simulator runs identically
with no monitor attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .engine import Environment

__all__ = ["Monitor", "Series", "Counter", "Gauge"]


@dataclass
class Series:
    """One sampled time series."""

    name: str
    times: List[float]
    values: List[float]

    def __len__(self) -> int:
        return len(self.times)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return sum(self.values) / len(self.values)

    @property
    def maximum(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return max(self.values)

    @property
    def minimum(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return min(self.values)

    def window(self, start: float, end: float) -> "Series":
        """Sub-series with start <= t < end."""
        pairs = [(t, v) for t, v in zip(self.times, self.values) if start <= t < end]
        return Series(
            name=self.name,
            times=[t for t, _ in pairs],
            values=[v for _, v in pairs],
        )

    def time_average(self, end: Optional[float] = None) -> float:
        """Trapezoid-free step average weighted by sample spacing.

        Each sample's value is held until the next sample time.  By
        default the last sample carries no weight (the step function is
        integrated up to the final sample time); pass ``end`` to extend
        the final sample's extent to a known end-of-window time, making
        every sample count consistently.  A single-sample series (and an
        ``end`` at or before the first sample) falls back to the plain
        mean instead of raising.
        """
        if not self.times:
            raise ValueError(f"series {self.name!r} is empty")
        if end is not None and end < self.times[-1]:
            raise ValueError(
                f"end {end} precedes the last sample at {self.times[-1]}"
            )
        last = self.times[-1] if end is None else end
        if len(self.times) < 2 and end is None:
            return self.mean
        total = 0.0
        for i in range(len(self.times) - 1):
            total += self.values[i] * (self.times[i + 1] - self.times[i])
        if end is not None:
            total += self.values[-1] * (end - self.times[-1])
        span = last - self.times[0]
        return total / span if span > 0 else self.mean


class Monitor:
    """Samples registered probes every ``interval`` simulated seconds."""

    def __init__(self, env: Environment, interval: float = 0.01) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.env = env
        self.interval = interval
        self._probes: Dict[str, Callable[[], float]] = {}
        self._series: Dict[str, Series] = {}
        self._running = False
        # Incremented on every start(); a sampler process exits as soon
        # as its captured epoch goes stale, so stop() -> start() can
        # never leave two live samplers double-sampling every series.
        self._epoch = 0

    def probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register a probe; sampled once per interval after start()."""
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        self._probes[name] = fn
        self._series[name] = Series(name=name, times=[], values=[])

    def start(self) -> None:
        """Begin sampling (idempotent; restart after stop() is safe)."""
        if self._running:
            return
        self._running = True
        self._epoch += 1
        self.env.process(self._sampler(self._epoch))

    def stop(self) -> None:
        """Stop sampling; the pending sampler wake-up becomes a no-op."""
        self._running = False

    def series(self, name: str) -> Series:
        try:
            return self._series[name]
        except KeyError:
            known = ", ".join(sorted(self._series))
            raise KeyError(f"unknown series {name!r}; known: {known}") from None

    @property
    def series_names(self) -> Sequence[str]:
        return sorted(self._series)

    def _sampler(self, epoch: int):
        while self._running and epoch == self._epoch:
            now = self.env.now
            for name, fn in self._probes.items():
                series = self._series[name]
                series.times.append(now)
                series.values.append(float(fn()))
            yield self.env.timeout(self.interval)


class Counter:
    """Monotonic event counter with rate computation."""

    def __init__(self, env: Environment, name: str = "counter") -> None:
        self.env = env
        self.name = name
        self.count = 0
        self._marks: List[Tuple[float, int]] = []

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError("counter increments must be non-negative")
        self.count += by
        self._marks.append((self.env.now, self.count))

    def rate(self, window: Optional[float] = None) -> float:
        """Events per second, over the trailing ``window`` (or all time)."""
        if not self._marks:
            return 0.0
        end_time, end_count = self._marks[-1]
        if window is None:
            start_time, start_count = 0.0, 0
        else:
            cutoff = end_time - window
            start_time, start_count = 0.0, 0
            for t, c in self._marks:
                if t < cutoff:
                    start_time, start_count = t, c
                else:
                    break
        span = end_time - start_time
        if span <= 0:
            return 0.0
        return (end_count - start_count) / span


class Gauge:
    """A manually-set level with time-weighted averaging."""

    def __init__(self, env: Environment, name: str = "gauge", initial: float = 0.0) -> None:
        self.env = env
        self.name = name
        self._value = initial
        self._last_change = env.now
        self._weighted_total = 0.0
        self._start = env.now

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self.env.now
        self._weighted_total += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def time_average(self) -> float:
        """Time-weighted mean level since creation."""
        now = self.env.now
        total = self._weighted_total + self._value * (now - self._last_change)
        span = now - self._start
        return total / span if span > 0 else self._value
