"""Deterministic discrete-event simulation kernel (SimPy-style, from scratch).

Public surface::

    env = Environment()
    def proc(env):
        yield env.timeout(1.0)
        return "done"
    p = env.process(proc(env))
    env.run()        # or env.run(until=10.0) / env.run(until=p)

Synchronization primitives: :class:`Resource`, :class:`PriorityResource`,
:class:`Container`, :class:`Store`, :class:`FilterStore`,
:class:`PriorityStore`.  Reproducible randomness: :class:`RandomStreams`.
"""

from .containers import Container
from .engine import EmptySchedule, Environment
from .monitor import Counter, Gauge, Monitor, Series
from .events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from .process import Initialize, Interrupt, Process
from .resources import PriorityResource, Release, Request, Resource
from .rng import RandomStreams
from .stores import FilterStore, PriorityItem, PriorityStore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "Counter",
    "Gauge",
    "Monitor",
    "Series",
    "EmptySchedule",
    "Environment",
    "Event",
    "FilterStore",
    "Initialize",
    "Interrupt",
    "PriorityItem",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "Release",
    "Request",
    "Resource",
    "Store",
    "Timeout",
]
