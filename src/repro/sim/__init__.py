"""Deterministic discrete-event simulation kernel (SimPy-style, from scratch).

Public surface::

    env = Environment()
    def proc(env):
        yield env.timeout(1.0)
        return "done"
    p = env.process(proc(env))
    env.run()        # or env.run(until=10.0) / env.run(until=p)

Synchronization primitives: :class:`Resource`, :class:`PriorityResource`,
:class:`Container`, :class:`Store`, :class:`FilterStore`,
:class:`PriorityStore`.  Reproducible randomness: :class:`RandomStreams`.

The dispatch queue core is selectable — ``Environment(scheduler="heap")``
(default) or ``"calendar"``, also via the ``REPRO_SCHEDULER`` environment
variable — and results are bit-identical under either (MODELING.md §10).
"""

from .containers import Container
from .engine import (
    DEFAULT_SCHEDULER,
    SCHEDULERS,
    EmptySchedule,
    Environment,
    resolve_scheduler,
)
from .monitor import Counter, Gauge, Monitor, Series
from .events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from .process import Initialize, Interrupt, Process
from .resources import PriorityResource, Release, Request, Resource
from .rng import RandomStreams
from .stores import FilterStore, PriorityItem, PriorityStore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "Counter",
    "DEFAULT_SCHEDULER",
    "Gauge",
    "Monitor",
    "SCHEDULERS",
    "Series",
    "EmptySchedule",
    "Environment",
    "resolve_scheduler",
    "Event",
    "FilterStore",
    "Initialize",
    "Interrupt",
    "PriorityItem",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "Release",
    "Request",
    "Resource",
    "Store",
    "Timeout",
]
