"""Object stores: FIFO queues of items that processes put into and get from.

These model message queues throughout the serving simulator: the dynamic
batcher's pending queue, broker topics, inter-stage channels.  A
:class:`Store` optionally has bounded capacity (puts block when full).
:class:`FilterStore` lets getters select items with a predicate, and
:class:`PriorityStore` pops the smallest item first.

Implementation notes (hot path):

- ``items`` and the waiter lists are :class:`collections.deque`, so the
  FIFO pop is O(1) instead of the O(n) ``list.pop(0)`` — queue depths
  reach thousands under the paper's high-concurrency sweeps.
  :class:`PriorityStore` is the exception: its ``items`` stay a plain
  list because :mod:`heapq` requires one.
- The put/get event classes carry ``__slots__``; they are allocated once
  per message hop and never grow ad-hoc attributes.  :meth:`Store.put`
  and :meth:`Store.get` additionally draw from the environment's free
  lists (see ``Environment._recycle``): a put/get event whose dispatch
  provably left no outstanding references is reset and reused instead of
  re-allocated, which matters because every message hop costs one of
  each.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Optional

from .events import PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = ["Store", "FilterStore", "PriorityStore", "PriorityItem", "StorePut", "StoreGet"]


class StorePut(Event):
    """Succeeds when the item has been accepted by the store."""

    __slots__ = ("item", "store")

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        self.store = store
        store._put_waiters.append(self)
        store._trigger()

    def cancel(self) -> None:
        """Withdraw a still-pending put."""
        if not self.triggered and self in self.store._put_waiters:
            self.store._put_waiters.remove(self)


class StoreGet(Event):
    """Succeeds with the retrieved item."""

    __slots__ = ("store", "filter_fn", "requested_at", "_abandoned")

    def __init__(self, store: "Store", filter_fn: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.env)
        self.store = store
        self.filter_fn = filter_fn
        self.requested_at = store.env.now
        self._abandoned = False
        store._get_waiters.append(self)
        store._trigger()

    def cancel(self) -> None:
        """Withdraw the get; never loses an item.

        A get raced against a timeout (``yield get | env.timeout(...)``)
        can succeed in the very step the timeout fires: the item has
        already been popped from the store and stashed as this event's
        value, but the racing process resumes via the timeout and walks
        away.  Cancelling a get that has already succeeded therefore
        *requeues* its item at the front of the store, so the next getter
        receives it and nothing is silently dropped.  Cancelling a
        still-pending get simply deregisters it.  ``cancel()`` is
        idempotent.
        """
        if not self.triggered:
            try:
                self.store._get_waiters.remove(self)
            except ValueError:
                pass
            return
        if self._ok and not self._abandoned:
            self._abandoned = True
            self.store._return_item(self._value)

    @property
    def wait_time(self) -> float:
        """Time spent waiting for an item (so far, if still pending)."""
        return self.env.now - self.requested_at


class Store:
    """FIFO store of arbitrary items with optional bounded capacity."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.items = self._new_items()
        self._put_waiters: Deque[StorePut] = deque()
        self._get_waiters: Deque[StoreGet] = deque()
        # Peak occupancy, for memory/backlog diagnostics.
        self._peak = 0

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__}(items={len(self.items)})>"

    def _new_items(self):
        """Container for ``items``; deque for FIFO stores."""
        return deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def size(self) -> int:
        """Number of items currently stored."""
        return len(self.items)

    @property
    def peak_size(self) -> int:
        """Largest number of items ever stored."""
        return self._peak

    @property
    def waiting_getters(self) -> int:
        """Number of get() events currently blocked on an empty store."""
        return len(self._get_waiters)

    @property
    def waiting_putters(self) -> int:
        """Number of put() events currently blocked on a full store."""
        return len(self._put_waiters)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the event succeeds once there is room."""
        env = self.env
        pool = env._put_pool
        if pool:
            # Reuse a recycled StorePut: replicate StorePut.__init__ on
            # the already-reset carcass (callbacks is an attached empty
            # list; _value/_ok/_defused are re-armed here).
            event = pool.pop()
            event._value = PENDING
            event._ok = True
            event._defused = False
            event.item = item
            event.store = self
            self._put_waiters.append(event)
            self._trigger()
            return event
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove and return the next item; blocks (as an event) when empty."""
        return self._checkout_get(None)

    def _checkout_get(self, filter_fn: Optional[Callable[[Any], bool]]) -> StoreGet:
        """Pooled StoreGet factory shared by Store.get / FilterStore.get."""
        env = self.env
        pool = env._get_pool
        if pool:
            event = pool.pop()
            event._value = PENDING
            event._ok = True
            event._defused = False
            event.store = self
            event.filter_fn = filter_fn
            event.requested_at = env.now
            event._abandoned = False
            self._get_waiters.append(event)
            self._trigger()
            return event
        return StoreGet(self, filter_fn)

    # -- internals ---------------------------------------------------------

    def _do_put(self, event: StorePut) -> bool:
        items = self.items
        if len(items) < self._capacity:
            items.append(event.item)
            if len(items) > self._peak:
                self._peak = len(items)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.popleft())
            return True
        return False

    def _return_item(self, item: Any) -> None:
        """Requeue an item abandoned by a cancelled-after-success get.

        The item goes back to the *front* of the store (it was the oldest
        one), even if a racing put has meanwhile filled the store to
        capacity — losing the item would be worse than transiently
        exceeding the bound.  Blocked getters are then re-served.
        """
        self.items.appendleft(item)
        if len(self.items) > self._peak:
            self._peak = len(self.items)
        self._trigger()

    def _serve_getters(self) -> bool:
        """Serve blocked getters in FIFO order; True if any was served."""
        served = False
        get_waiters = self._get_waiters
        while get_waiters and self._do_get(get_waiters[0]):
            get_waiters.popleft()
            served = True
        return served

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            put_waiters = self._put_waiters
            while put_waiters and self._do_put(put_waiters[0]):
                put_waiters.popleft()
                progressed = True
            if self._get_waiters and self._serve_getters():
                progressed = True


class FilterStore(Store):
    """Store whose getters may select items with a predicate."""

    def get(self, filter_fn: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # type: ignore[override]
        return self._checkout_get(filter_fn)

    def _do_get(self, event: StoreGet) -> bool:
        if event.filter_fn is None:
            return super()._do_get(event)
        for i, item in enumerate(self.items):
            if event.filter_fn(item):
                del self.items[i]
                event.succeed(item)
                return True
        return False

    def _serve_getters(self) -> bool:
        # A later getter may be satisfiable even when the first is still
        # blocked on its predicate, so scan every waiter (in FIFO order).
        served = False
        waiters = self._get_waiters
        for _ in range(len(waiters)):
            getter = waiters.popleft()
            if self._do_get(getter):
                served = True
            else:
                waiters.append(getter)
        return served


class PriorityItem:
    """Orderable wrapper pairing a sortable priority with an arbitrary item.

    Equal priorities are tie-broken by a monotonic insertion sequence, so
    a :class:`PriorityStore` of ``PriorityItem``\\ s pops equal-priority
    items in FIFO order.  Without the tie-break, comparison falls through
    to heap order — i.e. whatever arrangement :mod:`heapq`'s sift left
    the list in — which varies with the interleaving of unrelated
    puts/gets and silently reorders same-priority work.
    """

    __slots__ = ("priority", "item", "_seq")

    _counter = itertools.count()

    def __init__(self, priority: Any, item: Any) -> None:
        self.priority = priority
        self.item = item
        self._seq = next(PriorityItem._counter)

    def __lt__(self, other: "PriorityItem") -> bool:
        if self.priority < other.priority:
            return True
        if other.priority < self.priority:
            return False
        return self._seq < other._seq

    def __repr__(self) -> str:
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """Store that always pops the smallest item.

    With :class:`PriorityItem` items, ties pop FIFO (insertion order);
    raw items tie-break however their own comparison orders them.
    """

    def _new_items(self):
        # heapq needs indexable storage; keep a plain list.
        return []

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            heapq.heappush(self.items, event.item)
            if len(self.items) > self._peak:
                self._peak = len(self.items)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(heapq.heappop(self.items))
            return True
        return False

    def _return_item(self, item: Any) -> None:
        # "Front of the queue" for a heap is simply its ordered position.
        heapq.heappush(self.items, item)
        if len(self.items) > self._peak:
            self._peak = len(self.items)
        self._trigger()
