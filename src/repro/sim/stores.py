"""Object stores: FIFO queues of items that processes put into and get from.

These model message queues throughout the serving simulator: the dynamic
batcher's pending queue, broker topics, inter-stage channels.  A
:class:`Store` optionally has bounded capacity (puts block when full).
:class:`FilterStore` lets getters select items with a predicate, and
:class:`PriorityStore` pops the smallest item first.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = ["Store", "FilterStore", "PriorityStore", "PriorityItem", "StorePut", "StoreGet"]


class StorePut(Event):
    """Succeeds when the item has been accepted by the store."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        self.store = store
        store._put_waiters.append(self)
        store._trigger()

    def cancel(self) -> None:
        """Withdraw a still-pending put."""
        if not self.triggered and self in self.store._put_waiters:
            self.store._put_waiters.remove(self)


class StoreGet(Event):
    """Succeeds with the retrieved item."""

    def __init__(self, store: "Store", filter_fn: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.env)
        self.store = store
        self.filter_fn = filter_fn
        self.requested_at = store.env.now
        store._get_waiters.append(self)
        store._trigger()

    def cancel(self) -> None:
        """Withdraw a still-pending get."""
        if not self.triggered and self in self.store._get_waiters:
            self.store._get_waiters.remove(self)

    @property
    def wait_time(self) -> float:
        """Time spent waiting for an item (so far, if still pending)."""
        return self.env.now - self.requested_at


class Store:
    """FIFO store of arbitrary items with optional bounded capacity."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []
        # Peak occupancy, for memory/backlog diagnostics.
        self._peak = 0

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__}(items={len(self.items)})>"

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def size(self) -> int:
        """Number of items currently stored."""
        return len(self.items)

    @property
    def peak_size(self) -> int:
        """Largest number of items ever stored."""
        return self._peak

    @property
    def waiting_getters(self) -> int:
        """Number of get() events currently blocked on an empty store."""
        return len(self._get_waiters)

    @property
    def waiting_putters(self) -> int:
        """Number of put() events currently blocked on a full store."""
        return len(self._put_waiters)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the event succeeds once there is room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove and return the next item; blocks (as an event) when empty."""
        return StoreGet(self)

    # -- internals ---------------------------------------------------------

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self.items.append(event.item)
            self._peak = max(self._peak, len(self.items))
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._put_waiters:
                if self._do_put(self._put_waiters[0]):
                    self._put_waiters.pop(0)
                    progressed = True
                else:
                    break
            # Serve getters; FilterStore may satisfy a later getter even if
            # the first is still blocked, so scan the whole list.
            idx = 0
            while idx < len(self._get_waiters):
                getter = self._get_waiters[idx]
                if self._do_get(getter):
                    self._get_waiters.pop(idx)
                    progressed = True
                else:
                    idx += 1


class FilterStore(Store):
    """Store whose getters may select items with a predicate."""

    def get(self, filter_fn: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # type: ignore[override]
        return StoreGet(self, filter_fn)

    def _do_get(self, event: StoreGet) -> bool:
        if event.filter_fn is None:
            return super()._do_get(event)
        for i, item in enumerate(self.items):
            if event.filter_fn(item):
                del self.items[i]
                event.succeed(item)
                return True
        return False


class PriorityItem:
    """Orderable wrapper pairing a sortable priority with an arbitrary item."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any) -> None:
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __repr__(self) -> str:
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """Store that always pops the smallest item (heap order)."""

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            heapq.heappush(self.items, event.item)
            self._peak = max(self._peak, len(self.items))
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(heapq.heappop(self.items))
            return True
        return False
