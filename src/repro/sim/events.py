"""Core event primitives for the discrete-event simulation kernel.

The kernel follows the coroutine-process model popularized by SimPy: a
*process* is a Python generator that yields :class:`Event` objects, and the
:class:`~repro.sim.engine.Environment` resumes it when the yielded event
triggers.  Events carry a value (delivered to the waiting process) or an
exception (thrown into the waiting process).

Only the pieces needed by the serving simulator are implemented, but they are
implemented completely: callbacks, ok/defused bookkeeping, and composite
conditions (:class:`AllOf` / :class:`AnyOf`).

Instances of :class:`Event`, :class:`Timeout`, and the store events are
*pooled* by the environment: after dispatch, an instance whose reference
count proves no outside holder remains is scrubbed and reused by a later
``env.event()`` / ``env.timeout()`` / store call (see
:meth:`~repro.sim.engine.Environment._recycle`).  The contract is
one-sided: code that *keeps* a reference to an event keeps a normal,
never-recycled object whose ``value``/``ok`` stay readable forever; code
that drops its reference must not expect identity (``is``) relationships
between events across dispatches.  Condition classes are never pooled —
they hold cross-event state with unbounded lifetime.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .engine import Environment

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "ConditionValue",
]


class _PendingType:
    """Unique sentinel for the value of an event that has not triggered."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<PENDING>"


#: Sentinel stored in :attr:`Event._value` until the event triggers.
PENDING = _PendingType()

#: Scheduling priority for events that must run before same-time events.
URGENT = 0

#: Default scheduling priority.
NORMAL = 1


class Event:
    """An event that may happen at some point in simulated time.

    An event goes through up to three states:

    - *untriggered*: initial state, not scheduled.
    - *triggered*: scheduled on the environment's queue with a value.
    - *processed*: callbacks have run; waiting processes were resumed.

    Processes wait for an event by ``yield``-ing it.  When the event is
    processed, each waiting process receives :attr:`value` (or has
    :attr:`value` raised into it when the event failed).

    Events are the single most-allocated objects in a simulation, so the
    whole hierarchy is ``__slots__``-based: no per-instance ``__dict__``.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__}() object at {id(self):#x}>"

    @property
    def triggered(self) -> bool:
        """``True`` if the event has been scheduled (has a value)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have run and the event is finished."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.

        Only meaningful once the event has triggered.
        """
        if self._value is PENDING:
            raise AttributeError("value of the event is not yet available")
        return self._ok

    @property
    def defused(self) -> bool:
        """``True`` if the failure of this event has been handled.

        A failed event whose exception was never delivered to a process
        escalates to :meth:`Environment.run` to avoid silently losing
        errors.  Yielding a failed event defuses it.
        """
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    @property
    def value(self) -> Any:
        """The value of the event, or the exception if it failed."""
        if self._value is PENDING:
            raise AttributeError("value of the event is not yet available")
        return self._value

    def trigger(self, event: "Event") -> None:
        """Trigger with the state (ok/value) of another event.

        Used as a callback to chain events together.
        """
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event as successful with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulated time."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, priority=NORMAL, delay=delay)

    @property
    def delay(self) -> float:
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout(delay={self._delay}) object at {id(self):#x}>"


class ConditionValue:
    """Result of a condition: an ordered mapping of triggered events to values."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        pairs = ", ".join(f"{event!r}: {event._value!r}" for event in self.events)
        return f"<ConditionValue {{{pairs}}}>"

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def keys(self) -> List[Event]:
        return list(self.events)

    def values(self) -> List[Any]:
        return [event._value for event in self.events]

    def items(self):
        return [(event, event._value) for event in self.events]

    def todict(self) -> dict:
        return {event: event._value for event in self.events}


class Condition(Event):
    """Composite event that triggers when ``evaluate`` is satisfied.

    The condition's value is a :class:`ConditionValue` holding every event
    (in declaration order) that had triggered by the time the condition
    itself triggered.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        # Immediately evaluate in case the condition is trivially satisfied
        # (e.g. an empty AllOf or one with only-processed events).
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if self._value is PENDING and self._evaluate(self._events, self._count):
            self.succeed(ConditionValue())
            self._populate_value(self._value)

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition) and event._value is not PENDING:
                event._populate_value(value)
            elif event.callbacks is None:
                value.events.append(event)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            # Abort on the first failure; propagate the exception.
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(ConditionValue())
            self._populate_value(self._value)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """Evaluator: all events have triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        """Evaluator: at least one event has triggered (or there are none)."""
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition that triggers once all of ``events`` have succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers once any of ``events`` has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
