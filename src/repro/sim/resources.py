"""Shared resources with limited capacity (SimPy-style request/release).

A :class:`Resource` models a pool of identical slots (e.g. CPU cores held by
preprocessing workers, GPU compute occupancy).  Processes ``yield`` a
:meth:`Resource.request` event, which succeeds when a slot is granted, and
must eventually :meth:`Resource.release` it.  ``with`` semantics are
supported::

    with resource.request() as req:
        yield req
        ... use the resource ...

:class:`PriorityResource` grants queued requests in (priority, FIFO) order.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, List, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = ["Request", "Release", "Resource", "PriorityResource"]


class Request(Event):
    """Event that succeeds when the resource grants a slot to the requester."""

    __slots__ = ("resource", "usage_since", "requested_at")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.usage_since: Optional[float] = None
        #: Time the request was issued; used for queue-time accounting.
        self.requested_at: float = resource.env.now
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        # Cancel if still queued, release if granted; both are idempotent
        # through Resource.release/cancel.
        self.resource.release(self)

    @property
    def wait_time(self) -> float:
        """Time spent queued before the slot was granted (so far, if pending)."""
        granted_at = self.usage_since if self.usage_since is not None else self.env.now
        return granted_at - self.requested_at


class PriorityRequest(Request):
    """Request with a priority; lower values are granted first."""

    __slots__ = ("priority", "order")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        self.priority = priority
        #: Tie-break counter assigned by the resource for FIFO within priority.
        self.order: int = 0
        super().__init__(resource)

    @property
    def key(self):
        return (self.priority, self.order)


class Release(Event):
    """Immediate event confirming a release (for symmetry with SimPy)."""

    __slots__ = ("request",)

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.request = request
        resource._do_release(request)
        self.succeed()


class Resource:
    """A pool of ``capacity`` identical slots granted FIFO."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        # FIFO grant queue: deque for the O(1) pop in _next_request
        # (PriorityResource swaps in a sortable list).
        self.queue = self._new_queue()
        self.users: List[Request] = []
        # Utilization accounting: busy slot-seconds integrated over time.
        self._busy_time = 0.0
        self._last_change = env.now

    def __repr__(self) -> str:
        return (
            f"<{self.__class__.__name__}(capacity={self._capacity}, "
            f"users={len(self.users)}, queued={len(self.queue)})>"
        )

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        """Request a slot; the returned event succeeds when granted."""
        return Request(self)

    def release(self, request: Request) -> Optional[Release]:
        """Release a granted slot or cancel a queued request.

        Safe to call more than once for the same request (subsequent calls
        are no-ops), which makes ``with`` blocks robust.
        """
        if request in self.users or request in self.queue:
            return Release(self, request)
        return None

    # -- accounting --------------------------------------------------------

    def _account(self) -> None:
        now = self.env.now
        self._busy_time += len(self.users) * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Total busy slot-seconds accumulated up to the current time."""
        self._account()
        return self._busy_time

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Average fraction of capacity in use.

        ``elapsed`` defaults to the current simulation time (i.e. measured
        from t=0).
        """
        if elapsed is None:
            elapsed = self.env.now
        if elapsed <= 0:
            return 0.0
        return self.busy_time() / (self._capacity * elapsed)

    # -- internal grant machinery -------------------------------------------

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            self._enqueue(request)

    def _enqueue(self, request: Request) -> None:
        self.queue.append(request)

    def _grant(self, request: Request) -> None:
        self._account()
        self.users.append(request)
        request.usage_since = self.env.now
        request.succeed()

    def _do_release(self, request: Request) -> None:
        if request in self.users:
            self._account()
            self.users.remove(request)
            self._dispatch()
        elif request in self.queue:
            # Cancelled while still waiting.
            self.queue.remove(request)

    def _new_queue(self):
        return deque()

    def _next_request(self) -> Optional[Request]:
        if not self.queue:
            return None
        return self.queue.popleft()

    def _dispatch(self) -> None:
        while len(self.users) < self._capacity:
            request = self._next_request()
            if request is None:
                return
            self._grant(request)


class PriorityResource(Resource):
    """Resource whose queue is served in (priority, FIFO) order."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._order = itertools.count()

    def _new_queue(self):
        # Sorted in (priority, FIFO) order on insert; needs list.sort.
        return []

    def _next_request(self) -> Optional[Request]:
        if not self.queue:
            return None
        return self.queue.pop(0)

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _enqueue(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        request.order = next(self._order)
        self.queue.append(request)
        self.queue.sort(key=lambda r: r.key)  # type: ignore[attr-defined]

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        request.order = next(self._order)
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            self.queue.append(request)
            self.queue.sort(key=lambda r: r.key)  # type: ignore[attr-defined]
