"""The simulation environment: event queue and main loop."""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, List, Optional, Tuple

from .events import NORMAL, PENDING, AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Environment", "EmptySchedule", "StopSimulation"]


class EmptySchedule(Exception):
    """Raised when the event queue is empty and the simulation cannot advance."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at the until-event."""


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a monotonically increasing float (seconds, by convention, in
    this repository).  Events scheduled at the same time are processed in
    (priority, insertion order), which makes runs fully deterministic.
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_proc")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_proc: Optional[Process] = None

    def __repr__(self) -> str:
        return f"<Environment(now={self._now}, pending={len(self._queue)})>"

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active_proc

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that triggers after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Condition that waits for all of ``events``."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Condition that waits for any of ``events``."""
        return AnyOf(self, events)

    # -- scheduling and the main loop -------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Put a triggered ``event`` on the queue after ``delay``."""
        eid = self._eid + 1
        self._eid = eid
        heappush(self._queue, (self._now + delay, priority, eid, event))

    def schedule_at(self, event: Event, at: float, priority: int = NORMAL) -> None:
        """Put a triggered ``event`` on the queue at absolute time ``at``.

        Unlike :meth:`schedule`, which computes ``now + delay``, this
        lands the event at exactly the given float.  Cross-environment
        coordinators (``repro.cluster``) need that exactness: a delivery
        computed as an absolute time in one environment must fire at the
        bit-identical time in another, and ``now + (at - now)`` can be
        one ulp off.
        """
        if at < self._now:
            raise ValueError(f"at ({at}) must be >= now ({self._now})")
        eid = self._eid + 1
        self._eid = eid
        heappush(self._queue, (at, priority, eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` when there is nothing left to do.
        """
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        # Finish the event: detach callbacks, then invoke each of them.
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failed event nobody handled: escalate to run()'s caller.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        - ``None``: run until the event queue is exhausted.
        - a number: run until simulation time reaches it (time is advanced
          to exactly ``until`` even if no event occurs then).
        - an :class:`Event`: run until that event has been processed and
          return its value (raising its exception if it failed).
        """
        until_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                until_event = until
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until ({at}) must be >= now ({self._now})")
                until_event = Event(self)
                until_event._ok = True
                until_event._value = None
                # Priority below URGENT so everything at `at` runs first.
                self.schedule(until_event, priority=NORMAL + 1, delay=at - self._now)

            if until_event.callbacks is None:
                # Already processed before run() was called.
                if until_event._ok:
                    return until_event._value
                raise until_event._value
            until_event.callbacks.append(_stop_simulation)

        # Inlined event loop (equivalent to `while True: self.step()`).
        # This is the hottest code in the simulator: local bindings for the
        # queue and heappop, and no per-event method call or assert,
        # measurably raise events/sec on large sweeps.
        queue = self._queue
        try:
            while True:
                try:
                    item = heappop(queue)
                except IndexError:
                    raise EmptySchedule() from None
                self._now = item[0]
                event = item[3]
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # A failed event nobody handled: escalate to the caller.
                    raise event._value
        except StopSimulation as stop:
            finished: Event = stop.args[0]
            if finished._ok:
                return finished._value
            raise finished._value from None
        except EmptySchedule:
            if until_event is not None and until_event._value is PENDING:
                raise RuntimeError(
                    f"no scheduled events left but until event {until_event!r} "
                    "has not triggered"
                ) from None
        return None


def _stop_simulation(event: Event) -> None:
    """Callback attached to the until-event: unwind the main loop."""
    raise StopSimulation(event)
