"""The simulation environment: event queue and main loop.

Two interchangeable queue cores drive dispatch (see
:func:`resolve_scheduler`):

- ``"calendar"`` (default): the :class:`~repro.sim.calendar.CalendarQueue`
  — O(1) amortized push/pop independent of queue depth.
- ``"heap"``: the classic ``heapq`` binary heap, kept as a fallback and
  as the reference the calendar core is pinned against.

Both maintain the exact ``(time, priority, eid)`` total order, so a run
is bit-identical under either core (asserted by
``tests/serving/test_scheduler_determinism.py``).  Selection: the
``scheduler=`` constructor argument, else the ``REPRO_SCHEDULER``
environment variable, else the default.

The dispatch loop also recycles the hottest event objects
(:class:`~repro.sim.events.Timeout`, plain :class:`~repro.sim.events.Event`,
and the store put/get pairs) through per-environment free lists.  An
event is recycled only when the interpreter's reference count proves
nothing outside the dispatch loop still holds it, so pooling is
invisible to policy code; a pooled event must never escape the
environment that owns it (see MODELING.md §10).
"""

from __future__ import annotations

import os
import sys
from heapq import heappop, heappush
from typing import Any, Generator, List, Optional, Tuple

from .calendar import CalendarQueue
from .events import NORMAL, PENDING, AllOf, AnyOf, Event, Timeout
from .process import Process
from .stores import StoreGet, StorePut

__all__ = [
    "Environment",
    "EmptySchedule",
    "StopSimulation",
    "DEFAULT_SCHEDULER",
    "SCHEDULERS",
    "resolve_scheduler",
]

#: Queue cores understood by :class:`Environment`.
SCHEDULERS = ("calendar", "heap")

#: Core used when neither ``scheduler=`` nor ``REPRO_SCHEDULER`` says
#: otherwise.  CPython's C-accelerated ``heapq`` wins on constant
#: factors at every queue depth this repository's workloads reach (see
#: ``python -m repro bench``); the calendar core is kept fully
#: selectable — and forced on a dedicated CI leg — because it is the
#: depth-insensitive option and the two must stay bit-identical.
DEFAULT_SCHEDULER = "heap"

#: Per-environment cap on each free list; a pathological run cannot
#: hoard unbounded garbage in the pools.
_POOL_LIMIT = 1024

# CPython's exact reference count is what makes recycling provably safe;
# on interpreters without it the pools simply never refill.
_getrefcount = getattr(sys, "getrefcount", None)
if _getrefcount is None:  # pragma: no cover - non-CPython fallback
    def _getrefcount(_obj: Any) -> int:
        return 0


def resolve_scheduler(name: Optional[str] = None) -> str:
    """Resolve a scheduler choice: argument > ``REPRO_SCHEDULER`` > default."""
    if name is None:
        name = os.environ.get("REPRO_SCHEDULER") or DEFAULT_SCHEDULER
    resolved = str(name).strip().lower()
    if resolved not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {name!r}; choose one of {', '.join(SCHEDULERS)}"
        )
    return resolved


class EmptySchedule(Exception):
    """Raised when the event queue is empty and the simulation cannot advance."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at the until-event."""


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a monotonically increasing float (seconds, by convention, in
    this repository).  Events scheduled at the same time are processed in
    (priority, insertion order), which makes runs fully deterministic.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_cal",
        "_eid",
        "_active_proc",
        "_timeout_pool",
        "_event_pool",
        "_put_pool",
        "_get_pool",
    )

    def __init__(self, initial_time: float = 0.0, *, scheduler: Optional[str] = None) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._cal: Optional[CalendarQueue] = (
            CalendarQueue() if resolve_scheduler(scheduler) == "calendar" else None
        )
        self._eid = 0
        self._active_proc: Optional[Process] = None
        self._timeout_pool: List[Timeout] = []
        self._event_pool: List[Event] = []
        self._put_pool: List[StorePut] = []
        self._get_pool: List[StoreGet] = []

    def __repr__(self) -> str:
        return (
            f"<Environment(now={self._now}, pending={self.pending}, "
            f"scheduler={self.scheduler!r})>"
        )

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def scheduler(self) -> str:
        """Name of the queue core driving this environment."""
        return "heap" if self._cal is None else "calendar"

    @property
    def pending(self) -> int:
        """Number of scheduled-but-undispatched events."""
        cal = self._cal
        return len(self._queue) if cal is None else len(cal)

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active_proc

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event` (pooled)."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._value = PENDING
            event._ok = True
            event._defused = False
            return event
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that triggers after ``delay`` (pooled).

        The construction + scheduling sequence is inlined here — this is
        the single most-executed allocation site in the simulator.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            timeout._value = value
            timeout._delay = delay
        else:
            timeout = Timeout.__new__(Timeout)
            timeout.env = self
            timeout.callbacks = []
            timeout._ok = True
            timeout._defused = False
            timeout._value = value
            timeout._delay = delay
        eid = self._eid + 1
        self._eid = eid
        cal = self._cal
        if cal is None:
            heappush(self._queue, (self._now + delay, NORMAL, eid, timeout))
        else:
            cal.push((self._now + delay, NORMAL, eid, timeout))
        return timeout

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Condition that waits for all of ``events``."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Condition that waits for any of ``events``."""
        return AnyOf(self, events)

    # -- scheduling and the main loop -------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Put a triggered ``event`` on the queue after ``delay``."""
        eid = self._eid + 1
        self._eid = eid
        cal = self._cal
        if cal is None:
            heappush(self._queue, (self._now + delay, priority, eid, event))
        else:
            cal.push((self._now + delay, priority, eid, event))

    def schedule_at(self, event: Event, at: float, priority: int = NORMAL) -> None:
        """Put a triggered ``event`` on the queue at absolute time ``at``.

        Unlike :meth:`schedule`, which computes ``now + delay``, this
        lands the event at exactly the given float.  Cross-environment
        coordinators (``repro.cluster``) need that exactness — and so
        does :meth:`run`'s until-event: a delivery computed as an
        absolute time must fire at the bit-identical time, and
        ``now + (at - now)`` can be one ulp off.
        """
        if at < self._now:
            raise ValueError(f"at ({at}) must be >= now ({self._now})")
        eid = self._eid + 1
        self._eid = eid
        cal = self._cal
        if cal is None:
            heappush(self._queue, (at, priority, eid, event))
        else:
            cal.push((at, priority, eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        cal = self._cal
        if cal is None:
            if not self._queue:
                return float("inf")
            return self._queue[0][0]
        return cal.peek()

    def _dispatch_next(self) -> None:
        """Pop and finish exactly one event — THE dispatch semantics.

        This is the single reference implementation that :meth:`step`
        uses and that the inlined loops in :meth:`run` replicate (the
        replication is pinned by ``tests/sim/test_engine.py``'s
        step/run-equivalence tests, so a queue swap cannot fork
        behavior between the two paths).  A :class:`StopSimulation`
        raised by an until-event callback propagates to the caller.
        """
        cal = self._cal
        if cal is None:
            try:
                item = heappop(self._queue)
            except IndexError:
                raise EmptySchedule() from None
        else:
            if not cal:
                raise EmptySchedule() from None
            item = cal.pop()
        self._now = item[0]
        event = item[3]
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failed event nobody handled: escalate to the caller.
            raise event._value
        self._recycle(event, callbacks)

    def _recycle(self, event: Event, callbacks: list) -> None:
        """Return a finished event to its free list when provably unheld.

        In the inlined run loops the safe refcount is 3 — the popped
        ``item`` tuple, the loop's ``event`` local, and the refcount
        call's own argument; here a fourth reference is this method's
        ``event`` parameter.  Any additional holder (a process that kept
        the event, a condition, a store waiter list) vetoes recycling,
        so reuse can never be observed from outside.  The detached
        ``callbacks`` list is cleared and re-attached so the next use
        allocates nothing.
        """
        cls = event.__class__
        if cls is Timeout:
            pool = self._timeout_pool
        elif cls is Event:
            pool = self._event_pool
        elif cls is StoreGet:
            pool = self._get_pool
        elif cls is StorePut:
            pool = self._put_pool
        else:
            return
        if _getrefcount(event) == 4 and len(pool) < _POOL_LIMIT:
            callbacks.clear()
            event.callbacks = callbacks
            if cls is StoreGet:
                event.store = None
                event.filter_fn = None
            elif cls is StorePut:
                event.store = None
                event.item = None
            pool.append(event)

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` when there is nothing left to do.
        Interleaving :meth:`step` with :meth:`run` is supported: both
        drive :meth:`_dispatch_next`'s semantics, so the resulting
        event order is identical to a pure :meth:`run`.
        """
        self._dispatch_next()

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        - ``None``: run until the event queue is exhausted.
        - a number: run until simulation time reaches it (time is advanced
          to exactly ``until`` even if no event occurs then).
        - an :class:`Event`: run until that event has been processed and
          return its value (raising its exception if it failed).
        """
        until_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                until_event = until
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until ({at}) must be >= now ({self._now})")
                until_event = Event(self)
                until_event._ok = True
                until_event._value = None
                # Priority below URGENT so everything at `at` runs first;
                # schedule_at lands the stop at *exactly* `at` (the
                # relative form re-introduces one-ulp `now + (at - now)`
                # drift).
                self.schedule_at(until_event, at, priority=NORMAL + 1)

            if until_event.callbacks is None:
                # Already processed before run() was called.
                if until_event._ok:
                    return until_event._value
                raise until_event._value
            until_event.callbacks.append(_stop_simulation)

        # Inlined event loops (equivalent to `while True: self.step()`).
        # This is the hottest code in the simulator: local bindings, no
        # per-event method call, and in-line recycling measurably raise
        # events/sec on large sweeps.  Keep both loops in lockstep with
        # _dispatch_next(): the step/run-equivalence tests pin this.
        try:
            if self._cal is None:
                self._run_heap()
            else:
                self._run_calendar()
        except StopSimulation as stop:
            finished: Event = stop.args[0]
            if finished._ok:
                return finished._value
            raise finished._value from None
        except EmptySchedule:
            if until_event is not None and until_event._value is PENDING:
                raise RuntimeError(
                    f"no scheduled events left but until event {until_event!r} "
                    "has not triggered"
                ) from None
        return None

    def _run_heap(self) -> None:
        """Inlined dispatch loop over the binary-heap core."""
        queue = self._queue
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        get_pool = self._get_pool
        put_pool = self._put_pool
        refcount = _getrefcount
        while True:
            try:
                item = heappop(queue)
            except IndexError:
                raise EmptySchedule() from None
            self._now = item[0]
            event = item[3]
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                # A failed event nobody handled: escalate to the caller.
                raise event._value
            # Inline of _recycle(); see its docstring for the invariant.
            cls = event.__class__
            if cls is Timeout:
                if refcount(event) == 3 and len(timeout_pool) < _POOL_LIMIT:
                    callbacks.clear()
                    event.callbacks = callbacks
                    timeout_pool.append(event)
            elif cls is Event:
                if refcount(event) == 3 and len(event_pool) < _POOL_LIMIT:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event_pool.append(event)
            elif cls is StoreGet:
                if refcount(event) == 3 and len(get_pool) < _POOL_LIMIT:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event.store = None
                    event.filter_fn = None
                    get_pool.append(event)
            elif cls is StorePut:
                if refcount(event) == 3 and len(put_pool) < _POOL_LIMIT:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event.store = None
                    event.item = None
                    put_pool.append(event)

    def _run_calendar(self) -> None:
        """Inlined dispatch loop over the calendar-queue core."""
        cal = self._cal
        pop = cal.pop
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        get_pool = self._get_pool
        put_pool = self._put_pool
        refcount = _getrefcount
        while True:
            if not cal._count:
                raise EmptySchedule() from None
            item = pop()
            self._now = item[0]
            event = item[3]
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                # A failed event nobody handled: escalate to the caller.
                raise event._value
            # Inline of _recycle(); see its docstring for the invariant.
            cls = event.__class__
            if cls is Timeout:
                if refcount(event) == 3 and len(timeout_pool) < _POOL_LIMIT:
                    callbacks.clear()
                    event.callbacks = callbacks
                    timeout_pool.append(event)
            elif cls is Event:
                if refcount(event) == 3 and len(event_pool) < _POOL_LIMIT:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event_pool.append(event)
            elif cls is StoreGet:
                if refcount(event) == 3 and len(get_pool) < _POOL_LIMIT:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event.store = None
                    event.filter_fn = None
                    get_pool.append(event)
            elif cls is StorePut:
                if refcount(event) == 3 and len(put_pool) < _POOL_LIMIT:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event.store = None
                    event.item = None
                    put_pool.append(event)


def _stop_simulation(event: Event) -> None:
    """Callback attached to the until-event: unwind the main loop."""
    raise StopSimulation(event)
