"""Wall-clock backend: the same kernel primitives on asyncio.

:class:`AsyncioBackend` subclasses the DES
:class:`~repro.sim.engine.Environment` so that every event, process,
store, resource, and container implementation is shared *by identity* —
the only thing replaced is the dispatch loop, which sleeps real time
between events instead of jumping the clock.  Policy code (servers,
batchers, caches, balancers, telemetry) cannot tell the difference;
that is the point.

Three clock modes:

- ``time_scale=1.0`` (default): one simulated second per wall second —
  live serving.
- ``time_scale=S``: S simulated seconds per wall second — replay a
  recorded 24-hour trace through the live stack in 24/S hours
  ("time-compressed" sim-vs-live comparison).
- ``fast_forward=True``: never sleep; dispatch events back-to-back at
  their scheduled times exactly like the DES loop (but under the
  asyncio driver, yielding to the loop so concurrent I/O still runs).
  With no external input this is deterministic and produces metrics
  identical to the virtual backend — the property the parity tests pin.

External inputs (live HTTP handlers) run as asyncio tasks on the same
loop.  They inject work by calling ordinary kernel methods
(``env.process(...)``, ``store.put(...)``); every ``schedule`` pokes the
dispatch loop awake, so injected events are picked up immediately.  Call
:meth:`touch` first so ``now`` reflects the wall clock at injection time
(between dispatches the cached ``now`` lags).
"""

from __future__ import annotations

import asyncio
import time
from heapq import heappop
from typing import Any, Optional

from ..sim.engine import Environment, StopSimulation, _stop_simulation
from ..sim.events import NORMAL, PENDING, Event

__all__ = ["AsyncioBackend"]

#: Dispatch at most this many events before yielding to the asyncio
#: loop, so a burst of same-time kernel work cannot starve socket I/O.
_DISPATCH_SLICE = 64


class AsyncioBackend(Environment):
    """Execution backend dispatching kernel events against the wall clock."""

    __slots__ = (
        "time_scale",
        "fast_forward",
        "_wall_origin",
        "_virtual_origin",
        "_wakeup",
        "_stop_requested",
        "_running",
    )

    #: Marks this backend as wall-clock driven (see
    #: :func:`repro.kernel.base.is_realtime`).
    realtime = True

    def __init__(
        self,
        initial_time: float = 0.0,
        *,
        time_scale: float = 1.0,
        fast_forward: bool = False,
    ) -> None:
        # The wall-clock dispatch loop below peeks/pops `_queue` directly
        # (it needs the next event *time* to size its sleep), so this
        # backend always runs on the binary-heap core regardless of the
        # REPRO_SCHEDULER default.
        super().__init__(initial_time, scheduler="heap")
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.time_scale = float(time_scale)
        self.fast_forward = bool(fast_forward)
        self._wall_origin: Optional[float] = None
        self._virtual_origin = float(initial_time)
        self._wakeup: Optional[asyncio.Event] = None
        self._stop_requested = False
        self._running = False

    def __repr__(self) -> str:
        mode = "fast-forward" if self.fast_forward else f"x{self.time_scale:g}"
        return (
            f"<AsyncioBackend(now={self._now:.6f}, {mode}, "
            f"pending={len(self._queue)})>"
        )

    # -- clock -------------------------------------------------------------

    def wall_now(self) -> float:
        """Current wall-clock reading mapped into kernel time.

        Before :meth:`run_async` starts (or in fast-forward mode) this
        is simply the kernel's current time.
        """
        if self._wall_origin is None or self.fast_forward:
            return self._now
        elapsed = time.monotonic() - self._wall_origin
        return self._virtual_origin + elapsed * self.time_scale

    def touch(self) -> float:
        """Advance ``now`` to the wall clock; returns the new ``now``.

        External injectors (HTTP handlers, signal handlers) call this
        before creating events so timestamps — request arrival times,
        batcher deadlines — reflect real time rather than the time of
        the last dispatched event.
        """
        wall = self.wall_now()
        if wall > self._now:
            self._now = wall
        return self._now

    # -- scheduling (poke the sleeping dispatch loop) ----------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        super().schedule(event, priority, delay)
        self._poke()

    def schedule_at(self, event: Event, at: float, priority: int = NORMAL) -> None:
        super().schedule_at(event, at, priority)
        self._poke()

    def _poke(self) -> None:
        if self._wakeup is not None and not self._wakeup.is_set():
            self._wakeup.set()

    def request_stop(self) -> None:
        """Ask the dispatch loop to exit after the in-flight event."""
        self._stop_requested = True
        self._poke()

    # -- asyncio bridging --------------------------------------------------

    def as_future(self, event: Event) -> "asyncio.Future":
        """An :class:`asyncio.Future` resolving with ``event``'s outcome.

        Lets plain coroutines (HTTP handlers) ``await`` kernel events:
        the future receives the event's value, or its exception if the
        event failed (failure is defused — awaiting counts as handling).
        """
        future = asyncio.get_running_loop().create_future()

        def _resolve(ev: Event) -> None:
            if future.cancelled():
                ev._defused = True
                return
            if ev._ok:
                future.set_result(ev._value)
            else:
                ev._defused = True
                future.set_exception(ev._value)

        if event.callbacks is None:  # already processed
            _resolve(event)
        else:
            event.callbacks.append(_resolve)
        return future

    # -- the wall-clock dispatch loop --------------------------------------

    def run(self, until: Any = None) -> Any:
        raise RuntimeError(
            "AsyncioBackend dispatches on a wall clock; use "
            "'await env.run_async(until=...)' (or repro.kernel.run_until)"
        )

    async def run_async(self, until: Any = None, *, stop_on_empty: Optional[bool] = None) -> Any:
        """Dispatch events against the wall clock until done.

        ``until`` follows :meth:`Environment.run` semantics (``None``,
        a time, or an event).  ``stop_on_empty`` controls what an empty
        queue means: ``True`` returns (DES drain semantics), ``False``
        parks until external input schedules more work (live serving).
        The default is ``True`` only when ``until`` is ``None`` — a
        pending until-event implies more work is expected.

        :meth:`request_stop` interrupts the loop from any task or
        signal handler; the loop then returns ``None``.
        """
        if self._running:
            raise RuntimeError("run_async() is already driving this backend")
        if stop_on_empty is None:
            stop_on_empty = until is None

        until_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                until_event = until
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until ({at}) must be >= now ({self._now})")
                until_event = Event(self)
                until_event._ok = True
                until_event._value = None
                # schedule_at, not schedule(delay=at - now): the relative
                # form lands one ulp off `at` for pathological floats,
                # which would fork the stop time from the virtual backend.
                self.schedule_at(until_event, at, priority=NORMAL + 1)
            if until_event.callbacks is None:
                if until_event._ok:
                    return until_event._value
                raise until_event._value
            until_event.callbacks.append(_stop_simulation)

        self._running = True
        self._stop_requested = False
        self._wakeup = asyncio.Event()
        self._wall_origin = time.monotonic()
        self._virtual_origin = self._now
        queue = self._queue
        dispatched_in_slice = 0
        try:
            while not self._stop_requested:
                if not queue:
                    if stop_on_empty:
                        break
                    await self._sleep_wall(None)
                    continue
                target = queue[0][0]
                if not self.fast_forward:
                    wall = self.wall_now()
                    if target > wall:
                        await self._sleep_wall((target - wall) / self.time_scale)
                        continue

                item = heappop(queue)
                if self.fast_forward:
                    self._now = item[0]
                else:
                    # Stamp dispatch with real time: latency measured on
                    # this backend includes genuine scheduling overhead.
                    wall = self.wall_now()
                    self._now = wall if wall > item[0] else item[0]
                event = item[3]
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value

                dispatched_in_slice += 1
                if dispatched_in_slice >= _DISPATCH_SLICE:
                    dispatched_in_slice = 0
                    await asyncio.sleep(0)  # let socket I/O breathe
        except StopSimulation as stop:
            finished: Event = stop.args[0]
            if finished._ok:
                return finished._value
            raise finished._value from None
        finally:
            self._running = False
            self._wakeup = None

        if (
            until_event is not None
            and until_event._value is PENDING
            and not self._stop_requested
        ):
            raise RuntimeError(
                f"no scheduled events left but until event {until_event!r} "
                "has not triggered"
            )
        return None

    async def _sleep_wall(self, seconds: Optional[float]) -> None:
        """Sleep wall time, waking early when new work is scheduled."""
        self._wakeup.clear()
        if seconds is None:
            await self._wakeup.wait()
            return
        try:
            await asyncio.wait_for(self._wakeup.wait(), timeout=seconds)
        except asyncio.TimeoutError:
            pass
