"""The clock-agnostic execution kernel: one protocol, two clocks.

Everything above the kernel — servers, batchers, caches, balancers,
autoscalers, fault injectors, telemetry — is *policy*: coroutine
processes that yield events, put/get items on stores, and read ``now``.
None of it may care whether ``now`` is a virtual simulation clock or a
wall clock.  :class:`ExecutionBackend` is the contract that makes that
explicit:

- :class:`~repro.kernel.virtual.VirtualTimeBackend` (the discrete-event
  :class:`~repro.sim.engine.Environment`) advances ``now`` in jumps from
  one scheduled event to the next — a 24-hour day runs in milliseconds
  and every run is bit-reproducible.
- :class:`~repro.kernel.realtime.AsyncioBackend` maps the identical
  primitives onto :mod:`asyncio`: the dispatch loop sleeps real
  (optionally scaled) wall time between events, and external inputs —
  live HTTP requests — inject events mid-run.

Policy code must obtain time and scheduling exclusively through this
protocol.  Direct ``heapq`` event queues, ``time.time()`` /
``time.monotonic()`` reads, and ``asyncio.sleep()`` calls are banned
outside the kernel (enforced by ``tests/kernel/test_clock_hygiene.py``
and the ruff ``TID251`` configuration in ``pyproject.toml``).
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Protocol, runtime_checkable

from ..sim.events import AllOf, AnyOf, Event, Timeout
from ..sim.process import Process

__all__ = ["ExecutionBackend", "is_realtime", "run_until"]


@runtime_checkable
class ExecutionBackend(Protocol):
    """What policy code may ask of its execution substrate.

    The protocol is deliberately identical to the surface of the DES
    :class:`~repro.sim.engine.Environment` — that class *is* the
    reference implementation — so every existing component runs
    unmodified under any conforming backend.  Synchronization
    primitives (:class:`~repro.sim.stores.Store`,
    :class:`~repro.sim.resources.Resource`,
    :class:`~repro.sim.containers.Container`) are built purely on
    ``schedule``/``now`` and therefore work against any backend.
    """

    @property
    def now(self) -> float:
        """Current time in seconds (virtual or wall, backend's choice)."""
        ...

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between events)."""
        ...

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`~repro.sim.events.Event`."""
        ...

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that triggers ``delay`` seconds from ``now``."""
        ...

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Spawn a coroutine process from ``generator``."""
        ...

    def all_of(self, events) -> AllOf:
        """Condition that waits for all of ``events``."""
        ...

    def any_of(self, events) -> AnyOf:
        """Condition that waits for any of ``events``."""
        ...

    # -- scheduling -------------------------------------------------------

    def schedule(self, event: Event, priority: int = 1, delay: float = 0.0) -> None:
        """Put a triggered ``event`` on the dispatch queue after ``delay``."""
        ...

    def schedule_at(self, event: Event, at: float, priority: int = 1) -> None:
        """Put a triggered ``event`` on the queue at absolute time ``at``."""
        ...

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        ...


def is_realtime(env: Any) -> bool:
    """``True`` when ``env`` dispatches against a wall clock.

    Policy code should almost never need this; it exists for run
    harnesses that must pick between :meth:`Environment.run` and
    :meth:`AsyncioBackend.run_async`, and for diagnostics.
    """
    return bool(getattr(env, "realtime", False))


def run_until(env: Any, until: Any = None) -> Any:
    """Drive ``env`` to completion regardless of its clock.

    A virtual-time backend runs inline via
    :meth:`~repro.sim.engine.Environment.run`; a realtime backend spins
    up an asyncio loop for :meth:`~repro.kernel.realtime.AsyncioBackend.run_async`.
    This is the single entry point experiment harnesses use, so the
    same runner source drives both clocks.
    """
    if is_realtime(env):
        import asyncio

        return asyncio.run(env.run_async(until=until))
    return env.run(until=until)
