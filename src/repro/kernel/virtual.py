"""Virtual-time backend: the deterministic discrete-event clock.

The DES :class:`~repro.sim.engine.Environment` is the kernel's reference
implementation of :class:`~repro.kernel.base.ExecutionBackend`: time
jumps from one scheduled event to the next, ties break on
(priority, insertion order), and a run is a pure function of its seed.
Every pinned golden in this repository (closed-loop, open-loop, faces,
fleet, cluster) is produced under this backend and stays bit-identical
across the kernel extraction — the refactor moved the abstraction
boundary, not the event loop.

``VirtualTimeBackend`` is an alias, not a wrapper: aliasing guarantees
there is exactly one DES dispatch loop in the codebase and that the
hot path (see ``BENCH_parallel.json``) pays nothing for the protocol.
"""

from __future__ import annotations

from ..sim.engine import (
    DEFAULT_SCHEDULER,
    SCHEDULERS,
    EmptySchedule,
    Environment,
    StopSimulation,
    resolve_scheduler,
)

__all__ = [
    "VirtualTimeBackend",
    "EmptySchedule",
    "StopSimulation",
    "DEFAULT_SCHEDULER",
    "SCHEDULERS",
    "resolve_scheduler",
]

#: The discrete-event simulation backend (alias of
#: :class:`repro.sim.engine.Environment`).
VirtualTimeBackend = Environment
