"""Clock-agnostic execution kernel.

One protocol (:class:`ExecutionBackend`), two clocks:

- :class:`VirtualTimeBackend` — the deterministic discrete-event loop
  (alias of :class:`repro.sim.engine.Environment`); every golden result
  in this repository is produced under it.
- :class:`AsyncioBackend` — the same primitives dispatched against the
  wall clock on :mod:`asyncio`, with ``time_scale`` compression and a
  deterministic ``fast_forward`` mode.

Policy code receives a backend and never imports a clock:
``repro.core``, ``repro.serving``, ``repro.cache``, ``repro.brokers``,
``repro.apps``, and ``repro.telemetry`` run unmodified under either.
The event/process/store primitives live in :mod:`repro.sim` and are
shared by both backends; they are re-exported here so new policy code
can depend on ``repro.kernel`` alone.
"""

from ..sim.containers import Container
from ..sim.events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from ..sim.process import Initialize, Interrupt, Process
from ..sim.resources import PriorityResource, Release, Request, Resource
from ..sim.rng import RandomStreams
from ..sim.stores import FilterStore, PriorityItem, PriorityStore, Store
from .base import ExecutionBackend, is_realtime, run_until
from .realtime import AsyncioBackend
from .virtual import (
    DEFAULT_SCHEDULER,
    SCHEDULERS,
    EmptySchedule,
    StopSimulation,
    VirtualTimeBackend,
    resolve_scheduler,
)

__all__ = [
    "ExecutionBackend",
    "VirtualTimeBackend",
    "AsyncioBackend",
    "is_realtime",
    "run_until",
    "EmptySchedule",
    "StopSimulation",
    "DEFAULT_SCHEDULER",
    "SCHEDULERS",
    "resolve_scheduler",
    # Shared primitives (implemented once, used by both clocks).
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "Event",
    "FilterStore",
    "Initialize",
    "Interrupt",
    "PriorityItem",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "Release",
    "Request",
    "Resource",
    "Store",
    "Timeout",
]
