"""Legacy shim so `pip install -e . --no-build-isolation` works offline
(the sandbox lacks the `wheel` package needed for PEP 660 editables)."""

from setuptools import setup

setup()
